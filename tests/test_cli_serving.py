"""Tests for the ``repro models`` and ``repro transform`` CLI subcommands."""

import numpy as np
import pytest

from repro import PFR, save_model
from repro.cli import build_parser, default_registry_root, main
from repro.graphs import pairwise_judgment_graph


@pytest.fixture
def artifact(rng, tmp_path):
    """A saved fitted PFR artifact plus matching query rows on disk."""
    X = rng.normal(size=(40, 5))
    WF = pairwise_judgment_graph([(0, 1), (3, 8)], n=40)
    model = PFR(n_components=2, gamma=0.5, n_neighbors=4).fit(X, WF)
    path = save_model(model, tmp_path / "pfr")
    rows = tmp_path / "rows.csv"
    np.savetxt(rows, rng.normal(size=(6, 5)), delimiter=",")
    return {"model": model, "artifact": path, "rows": rows, "X": X}


@pytest.fixture
def registry_dir(tmp_path):
    return str(tmp_path / "registry")


def _register(artifact, registry_dir, name="demo"):
    assert main([
        "models", "register", name, str(artifact["artifact"]),
        "--registry", registry_dir,
    ]) == 0


class TestParser:
    def test_models_register_args(self):
        args = build_parser().parse_args(
            ["models", "register", "demo", "m.npz", "--registry", "r",
             "--no-promote"]
        )
        assert args.models_command == "register"
        assert args.name == "demo"
        assert args.artifact == "m.npz"
        assert args.no_promote

    def test_transform_args(self):
        args = build_parser().parse_args(
            ["transform", "demo@2", "--input", "in.csv", "--output", "out.csv"]
        )
        assert args.spec == "demo@2"
        assert args.input == "in.csv"
        assert args.output == "out.csv"

    def test_transform_requires_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transform", "demo"])

    def test_models_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["models"])


class TestDefaultRegistryRoot:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", "/somewhere/reg")
        assert str(default_registry_root()) == "/somewhere/reg"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGISTRY", raising=False)
        assert default_registry_root().name == "registry"
        assert ".repro" in str(default_registry_root())


class TestModelsCommands:
    def test_register_and_list(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        out = capsys.readouterr().out
        assert "registered demo@1" in out
        assert "PFR" in out

        assert main(["models", "list", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "PFR" in out

    def test_list_empty(self, registry_dir, capsys):
        assert main(["models", "list", "--registry", registry_dir]) == 0
        assert "no models registered" in capsys.readouterr().out

    def test_show(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        _register(artifact, registry_dir)
        capsys.readouterr()
        assert main(["models", "show", "demo", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "version:         2 (latest)" in out
        assert "model_type:      PFR" in out
        assert "n_features_in:   5" in out
        assert "all_versions:    [1, 2]" in out
        assert '"gamma": 0.5' in out

    def test_show_pinned_version(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        _register(artifact, registry_dir)
        capsys.readouterr()
        assert main(
            ["models", "show", "demo@1", "--registry", registry_dir]
        ) == 0
        assert "version:         1\n" in capsys.readouterr().out

    def test_show_unpromoted_canary(self, artifact, registry_dir, capsys):
        # A fresh --no-promote registration must be inspectable by bare
        # name (the whole point of the canary flow).
        assert main([
            "models", "register", "canary", str(artifact["artifact"]),
            "--registry", registry_dir, "--no-promote",
        ]) == 0
        capsys.readouterr()
        assert main(
            ["models", "show", "canary", "--registry", registry_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "version:         1\n" in out
        assert "(latest)" not in out

    def test_no_promote(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        assert main([
            "models", "register", "demo", str(artifact["artifact"]),
            "--registry", registry_dir, "--no-promote",
        ]) == 0
        assert "[not promoted]" in capsys.readouterr().out
        main(["models", "show", "demo", "--registry", registry_dir])
        assert "version:         1 (latest)" in capsys.readouterr().out

    def test_promote(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        _register(artifact, registry_dir)
        capsys.readouterr()
        assert main(
            ["models", "promote", "demo", "1", "--registry", registry_dir]
        ) == 0
        assert "promoted demo@1" in capsys.readouterr().out

    def test_register_missing_artifact(self, registry_dir, capsys):
        assert main([
            "models", "register", "demo", "/nope/missing.npz",
            "--registry", registry_dir,
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_register_bad_name(self, artifact, registry_dir, capsys):
        assert main([
            "models", "register", "bad@name", str(artifact["artifact"]),
            "--registry", registry_dir,
        ]) == 2
        assert "bad model name" in capsys.readouterr().err

    def test_show_unknown_model(self, registry_dir, capsys):
        assert main(
            ["models", "show", "ghost", "--registry", registry_dir]
        ) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_promote_unknown_version(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        capsys.readouterr()
        assert main(
            ["models", "promote", "demo", "9", "--registry", registry_dir]
        ) == 2
        assert "no version 9" in capsys.readouterr().err


class TestTransformCommand:
    def test_transform_to_stdout(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        capsys.readouterr()
        assert main([
            "transform", "demo", "--input", str(artifact["rows"]),
            "--registry", registry_dir,
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert len(lines) == 6
        got = np.array([[float(v) for v in line.split(",")] for line in lines])
        X = np.loadtxt(artifact["rows"], delimiter=",")
        np.testing.assert_allclose(
            got, artifact["model"].transform(X), atol=1e-9
        )

    def test_transform_to_file(self, artifact, registry_dir, tmp_path, capsys):
        _register(artifact, registry_dir)
        capsys.readouterr()
        out_path = tmp_path / "z.csv"
        assert main([
            "transform", "demo@1", "--input", str(artifact["rows"]),
            "--output", str(out_path), "--registry", registry_dir,
        ]) == 0
        assert "wrote 6 x 2 representation" in capsys.readouterr().out
        Z = np.loadtxt(out_path, delimiter=",")
        assert Z.shape == (6, 2)

    def test_unknown_model(self, artifact, registry_dir, capsys):
        assert main([
            "transform", "ghost", "--input", str(artifact["rows"]),
            "--registry", registry_dir,
        ]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_schema_mismatch(self, artifact, registry_dir, tmp_path, rng, capsys):
        _register(artifact, registry_dir)
        capsys.readouterr()
        bad = tmp_path / "bad.csv"
        np.savetxt(bad, rng.normal(size=(3, 4)), delimiter=",")
        assert main([
            "transform", "demo", "--input", str(bad),
            "--registry", registry_dir,
        ]) == 2
        assert "schema mismatch" in capsys.readouterr().err

    def test_missing_input_file(self, artifact, registry_dir, capsys):
        _register(artifact, registry_dir)
        capsys.readouterr()
        assert main([
            "transform", "demo", "--input", "/nope/rows.csv",
            "--registry", registry_dir,
        ]) == 2
        assert "input file not found" in capsys.readouterr().err

    def test_unparseable_csv(self, artifact, registry_dir, tmp_path, capsys):
        _register(artifact, registry_dir)
        capsys.readouterr()
        bad = tmp_path / "garbage.csv"
        bad.write_text("a,b,c\n1,2,notanumber\n")
        assert main([
            "transform", "demo", "--input", str(bad),
            "--registry", registry_dir,
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestLandmarkServingRoundTrip:
    """Register → promote → `repro transform` a landmark-Nyström model on
    rows *not* in the training set, asserting the full v2 manifest path
    (stage digests incl. the ``landmarks`` one) survives save/load."""

    @pytest.fixture
    def landmark_artifact(self, rng, tmp_path):
        from repro import KernelPFR
        from repro.graphs import between_group_quantile_graph

        X_train = rng.normal(size=(120, 5))
        scores = X_train[:, 0] + rng.normal(scale=0.3, size=120)
        groups = np.arange(120) % 2
        w_fair = between_group_quantile_graph(scores, groups, n_quantiles=5)
        model = KernelPFR(
            n_components=3,
            gamma=0.6,
            extension="nystrom",
            landmarks=40,
            landmark_seed=1,
        ).fit(X_train, w_fair)
        path = save_model(model, tmp_path / "kpfr_landmark")
        # Unseen users: fresh draws, deliberately disjoint from X_train.
        unseen = tmp_path / "unseen.csv"
        np.savetxt(unseen, rng.normal(size=(7, 5)), delimiter=",")
        return {"model": model, "artifact": path, "unseen": unseen}

    def test_round_trip_serves_unseen_rows(
        self, landmark_artifact, registry_dir, tmp_path, capsys
    ):
        from repro.io import load_model
        from repro.serving import ModelRegistry

        # Canary-register, then promote — the rollback-capable path.
        assert main([
            "models", "register", "kpfr-lm",
            str(landmark_artifact["artifact"]),
            "--registry", registry_dir, "--no-promote",
        ]) == 0
        assert main([
            "models", "promote", "kpfr-lm", "1", "--registry", registry_dir,
        ]) == 0
        capsys.readouterr()

        assert main([
            "models", "show", "kpfr-lm", "--registry", registry_dir,
        ]) == 0
        shown = capsys.readouterr().out
        assert "landmarks:       40 (nystrom extension)" in shown
        assert "landmarks    " in shown  # the stage-digest line
        assert '"extension": "nystrom"' in shown

        out_path = tmp_path / "z.csv"
        assert main([
            "transform", "kpfr-lm", "--input",
            str(landmark_artifact["unseen"]),
            "--output", str(out_path), "--registry", registry_dir,
        ]) == 0
        Z = np.loadtxt(out_path, delimiter=",")
        X_unseen = np.loadtxt(landmark_artifact["unseen"], delimiter=",")
        np.testing.assert_allclose(
            Z, landmark_artifact["model"].transform(X_unseen), atol=1e-9
        )

        # Digest provenance survives io save/load and the registry record.
        record = ModelRegistry(registry_dir).record("kpfr-lm", 1)
        original = landmark_artifact["model"]
        assert record.stage_digests == original.plan_digests_
        assert record.landmarks == 40
        reloaded = load_model(record.path)
        assert reloaded.plan_digests_ == original.plan_digests_
        np.testing.assert_array_equal(
            reloaded.landmark_indices_, original.landmark_indices_
        )
