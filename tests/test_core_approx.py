"""Parity + property tests for the landmark-Nyström scaling layer.

The contract under test (``repro.core.approx``):

* **Exactness at m = n** — a landmark fit that selects every training row
  must reproduce the exact :class:`~repro.core.SpectralFitPlan` solve to
  1e-8, for every selection strategy and for both estimator families.
* **Fidelity is monotone in m** — on a seeded blob dataset, the aligned
  cosine similarity between the landmark and exact embeddings of held-out
  rows improves as the landmark budget grows.
* **Out-of-sample serving** — nystrom models transform arbitrary unseen
  rows; provenance (``landmarks`` stage digest, ``landmark_indices_``)
  survives persistence.
"""

import numpy as np
import pytest

from repro import PFR, KernelPFR
from repro.core import (
    LANDMARK_STRATEGIES,
    LandmarkPlan,
    PlanExtension,
    SpectralFitPlan,
    embedding_fidelity,
    fit_path,
    nystrom_extend,
    plan_for_estimator,
    row_agreement,
    select_landmarks,
)
from repro.datasets import simulate_blobs
from repro.exceptions import ValidationError
from repro.graphs import between_group_quantile_graph
from repro.io import load_model, save_model

PARITY_TOL = 1e-8


@pytest.fixture(scope="module")
def blob_problem():
    """Seeded blob workload: data, fairness graph, and held-out eval rows."""
    data = simulate_blobs(400, n_features=6, seed=5)
    w_fair = between_group_quantile_graph(
        data.side_information, data.s, n_quantiles=6
    )
    rng = np.random.default_rng(9)
    X_eval = data.X[rng.choice(data.X.shape[0], 120, replace=False)]
    return data.X, w_fair, X_eval


class TestSelectLandmarks:
    def test_sorted_unique_indices(self, rng):
        X = rng.normal(size=(50, 4))
        for strategy in LANDMARK_STRATEGIES:
            indices = select_landmarks(X, 12, strategy=strategy, seed=3)
            assert indices.shape == (12,)
            assert (np.diff(indices) > 0).all()  # sorted and unique
            assert indices.min() >= 0 and indices.max() < 50

    def test_m_equals_n_selects_every_row(self, rng):
        X = rng.normal(size=(30, 3))
        for strategy in LANDMARK_STRATEGIES:
            indices = select_landmarks(X, 30, strategy=strategy, seed=0)
            np.testing.assert_array_equal(indices, np.arange(30))

    def test_deterministic_in_seed(self, rng):
        X = rng.normal(size=(60, 5))
        for strategy in LANDMARK_STRATEGIES:
            a = select_landmarks(X, 15, strategy=strategy, seed=7)
            b = select_landmarks(X, 15, strategy=strategy, seed=7)
            np.testing.assert_array_equal(a, b)

    def test_duplicate_points_still_complete(self):
        # Every row identical: D² mass hits zero and selection must fall
        # back to uniform over the unchosen rows instead of looping.
        X = np.ones((20, 3))
        for strategy in ("kmeans++", "farthest"):
            indices = select_landmarks(X, 8, strategy=strategy, seed=1)
            assert len(np.unique(indices)) == 8

    def test_exclude_columns_drive_selection(self, rng):
        # With all signal in column 0 and column 0 excluded, farthest-point
        # selection on the remaining constant columns degenerates — it must
        # still return a valid index set.
        X = np.column_stack([rng.normal(size=40) * 100, np.ones(40), np.ones(40)])
        indices = select_landmarks(X, 10, strategy="farthest", seed=0, exclude=[0])
        assert len(np.unique(indices)) == 10

    def test_validation(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError):
            select_landmarks(X, 1)
        with pytest.raises(ValidationError):
            select_landmarks(X, 11)
        with pytest.raises(ValidationError):
            select_landmarks(X, 5, strategy="magic")


class TestParityAtFullBudget:
    """m = n landmark fits must equal the exact solve to 1e-8."""

    @pytest.mark.parametrize("strategy", LANDMARK_STRATEGIES)
    def test_pfr_m_equals_n(self, blob_problem, strategy):
        X, w_fair, X_eval = blob_problem
        exact = PFR(n_components=3, gamma=0.5).fit(X, w_fair)
        landmark = PFR(
            n_components=3,
            gamma=0.5,
            extension="nystrom",
            landmarks=X.shape[0],
            landmark_strategy=strategy,
        ).fit(X, w_fair)
        np.testing.assert_allclose(
            landmark.components_, exact.components_, atol=PARITY_TOL
        )
        np.testing.assert_allclose(
            landmark.eigenvalues_, exact.eigenvalues_, atol=PARITY_TOL
        )
        np.testing.assert_allclose(
            landmark.transform(X_eval), exact.transform(X_eval), atol=PARITY_TOL
        )

    def test_kernel_pfr_m_equals_n(self, blob_problem):
        X, w_fair, X_eval = blob_problem
        exact = KernelPFR(n_components=3, gamma=0.5).fit(X, w_fair)
        landmark = KernelPFR(
            n_components=3,
            gamma=0.5,
            extension="nystrom",
            landmarks=X.shape[0],
        ).fit(X, w_fair)
        np.testing.assert_allclose(
            landmark.alphas_, exact.alphas_, atol=PARITY_TOL
        )
        np.testing.assert_allclose(
            landmark.transform(X_eval), exact.transform(X_eval), atol=PARITY_TOL
        )

    def test_landmarks_above_n_clamp_to_exact(self, blob_problem):
        X, w_fair, _ = blob_problem
        exact = PFR(n_components=2, gamma=0.3).fit(X, w_fair)
        clamped = PFR(
            n_components=2, gamma=0.3, extension="nystrom", landmarks=10**6
        ).fit(X, w_fair)
        np.testing.assert_allclose(
            clamped.components_, exact.components_, atol=PARITY_TOL
        )

    def test_full_budget_shares_stage_digests_with_exact(self, blob_problem):
        # Same landmark rows ⇒ byte-identical graph inputs ⇒ the downstream
        # digest chain must coincide with the exact plan's.
        X, w_fair, _ = blob_problem
        exact = PFR(n_components=2).fit(X, w_fair)
        landmark = PFR(
            n_components=2, extension="nystrom", landmarks=X.shape[0]
        ).fit(X, w_fair)
        assert "landmarks" in landmark.plan_digests_
        for stage in ("graph", "laplacian", "projection", "solve"):
            assert landmark.plan_digests_[stage] == exact.plan_digests_[stage]


class TestFidelityMonotone:
    """Aligned-cosine fidelity must improve with the landmark budget."""

    BUDGETS = (10, 25, 60, 150, 400)

    def _fidelity_curve(self, cls, blob_problem):
        X, w_fair, X_eval = blob_problem
        exact = cls(n_components=3, gamma=0.5).fit(X, w_fair)
        Z_ref = exact.transform(X_eval)
        curve = []
        for m in self.BUDGETS:
            model = cls(
                n_components=3,
                gamma=0.5,
                extension="nystrom",
                landmarks=m,
                landmark_strategy="kmeans++",
                landmark_seed=0,
            ).fit(X, w_fair)
            curve.append(embedding_fidelity(Z_ref, model.transform(X_eval)))
        return curve

    @pytest.mark.parametrize("cls", [PFR, KernelPFR], ids=lambda c: c.__name__)
    def test_monotone_and_converges_to_one(self, cls, blob_problem):
        curve = self._fidelity_curve(cls, blob_problem)
        assert all(b > a for a, b in zip(curve, curve[1:])), curve
        assert curve[-1] > 1.0 - PARITY_TOL  # m = n is the exact solve
        assert curve[0] > 0.5  # even 10 landmarks beat noise


class TestLandmarkPlan:
    def test_sweep_reuses_subplan_solves(self, blob_problem):
        X, w_fair, _ = blob_problem
        template = PFR(n_components=3, extension="nystrom", landmarks=80)
        plan = LandmarkPlan.for_estimator(template, X, w_fair)
        swept = []
        for gamma in (0.0, 0.5, 1.0):
            model = PFR(
                n_components=3, gamma=gamma, extension="nystrom", landmarks=80
            )
            plan.fit(model)
            swept.append(model)
        for model in swept:
            fresh = PFR(
                n_components=3,
                gamma=model.gamma,
                extension="nystrom",
                landmarks=80,
            ).fit(X, w_fair)
            np.testing.assert_allclose(
                model.components_, fresh.components_, atol=PARITY_TOL
            )

    def test_fit_path_with_landmark_template(self, blob_problem):
        X, w_fair, _ = blob_problem
        template = PFR(n_components=3, extension="nystrom", landmarks=60)
        models = fit_path(X, w_fair, gammas=[0.0, 1.0], estimator=template)
        assert len(models) == 2
        for model in models:
            assert model.landmark_indices_ is not None
            assert model.landmark_indices_.shape == (60,)
            assert "landmarks" in model.plan_digests_

    def test_plan_for_estimator_dispatch(self, blob_problem):
        X, w_fair, _ = blob_problem
        exact_plan = plan_for_estimator(PFR(), X, w_fair)
        assert isinstance(exact_plan, SpectralFitPlan)
        landmark_plan = plan_for_estimator(
            PFR(extension="nystrom", landmarks=50), X, w_fair
        )
        assert isinstance(landmark_plan, LandmarkPlan)

    def test_exact_plan_rejects_nystrom_estimator(self, blob_problem):
        X, w_fair, _ = blob_problem
        plan = SpectralFitPlan.for_estimator(PFR(), X, w_fair)
        with pytest.raises(ValidationError, match="LandmarkPlan"):
            plan.fit(PFR(extension="nystrom", landmarks=50))

    def test_landmark_plan_rejects_mismatched_estimator(self, blob_problem):
        X, w_fair, _ = blob_problem
        plan = LandmarkPlan.for_estimator(
            PFR(extension="nystrom", landmarks=50), X, w_fair
        )
        with pytest.raises(ValidationError, match="landmarks"):
            plan.fit(PFR(extension="nystrom", landmarks=40))
        with pytest.raises(ValidationError, match="nystrom"):
            plan.fit(PFR())

    def test_extension_validation(self, blob_problem):
        X, w_fair, _ = blob_problem
        with pytest.raises(ValidationError, match="extension"):
            PFR(extension="approximate").fit(X, w_fair)
        with pytest.raises(ValidationError, match="landmarks"):
            PFR(extension="nystrom").fit(X, w_fair)
        with pytest.raises(ValidationError, match="strategy"):
            PFR(
                extension="nystrom", landmarks=20, landmark_strategy="magic"
            ).fit(X, w_fair)

    def test_kernel_components_capacity_is_landmark_count(self, blob_problem):
        X, w_fair, _ = blob_problem
        with pytest.raises(ValidationError, match="n_components"):
            KernelPFR(
                n_components=30, extension="nystrom", landmarks=20
            ).fit(X, w_fair)

    def test_extend_matches_landmark_embedding_shape(self, blob_problem):
        X, w_fair, X_eval = blob_problem
        plan = LandmarkPlan.for_estimator(
            PFR(n_components=3, extension="nystrom", landmarks=80), X, w_fair
        )
        Z = plan.extend(X_eval, gamma=0.5, d=3)
        assert Z.shape == (X_eval.shape[0], 3)
        assert np.isfinite(Z).all()
        with pytest.raises(ValidationError, match="gamma and d"):
            plan.extend(X_eval)


class TestNystromExtend:
    def test_weighted_average_stays_in_convex_hull(self, rng):
        X_landmarks = rng.normal(size=(30, 4))
        Z_landmarks = rng.normal(size=(30, 2))
        Z = nystrom_extend(
            rng.normal(size=(12, 4)), X_landmarks, Z_landmarks, n_neighbors=5
        )
        assert Z.shape == (12, 2)
        assert Z.min() >= Z_landmarks.min() - 1e-12
        assert Z.max() <= Z_landmarks.max() + 1e-12

    def test_far_query_falls_back_to_nearest_landmark(self, rng):
        # A query so far away that every heat-kernel weight underflows must
        # land on its single nearest landmark, not on a zero vector.
        X_landmarks = rng.normal(size=(10, 3))
        Z_landmarks = rng.normal(size=(10, 2))
        far = np.full((1, 3), 1e6)
        Z = nystrom_extend(far, X_landmarks, Z_landmarks, n_neighbors=4)
        nearest = np.argmin(np.sum((X_landmarks - far) ** 2, axis=1))
        np.testing.assert_allclose(Z[0], Z_landmarks[nearest])

    def test_shape_validation(self, rng):
        with pytest.raises(ValidationError, match="Z_landmarks"):
            nystrom_extend(
                rng.normal(size=(5, 3)),
                rng.normal(size=(10, 3)),
                rng.normal(size=(9, 2)),
            )


class TestPersistence:
    @pytest.mark.parametrize("cls", [PFR, KernelPFR], ids=lambda c: c.__name__)
    def test_landmark_model_round_trips(self, cls, blob_problem, tmp_path):
        X, w_fair, X_eval = blob_problem
        model = cls(
            n_components=2, gamma=0.4, extension="nystrom", landmarks=60
        ).fit(X, w_fair)
        loaded = load_model(save_model(model, tmp_path / "landmark"))
        assert loaded.extension == "nystrom"
        assert loaded.landmarks == 60
        np.testing.assert_array_equal(
            loaded.landmark_indices_, model.landmark_indices_
        )
        assert loaded.plan_digests_ == model.plan_digests_
        np.testing.assert_allclose(
            loaded.transform(X_eval), model.transform(X_eval), atol=1e-12
        )

    def test_exact_model_keeps_none_landmarks(self, blob_problem, tmp_path):
        X, w_fair, _ = blob_problem
        model = PFR(n_components=2).fit(X, w_fair)
        loaded = load_model(save_model(model, tmp_path / "exact"))
        assert loaded.landmark_indices_ is None


class TestRowAgreement:
    def test_identical_embeddings_score_one(self, rng):
        Z = rng.normal(size=(20, 3))
        np.testing.assert_allclose(row_agreement(Z, Z), 1.0, atol=1e-12)

    def test_scale_mismatch_collapses_the_score(self, rng):
        # Pure cosine is scale-blind; the norm-ratio factor is what makes
        # the drift signal catch mean-shifted rows whose parametric image
        # leaves the landmark hull with an inflated norm.
        Z = rng.normal(size=(20, 3))
        scores = row_agreement(Z, 10.0 * Z)
        np.testing.assert_allclose(scores, 0.1, atol=1e-12)

    def test_zero_rows_do_not_blow_up(self):
        Z = np.zeros((3, 2))
        assert np.isfinite(row_agreement(Z, Z)).all()


class TestStreamingExtend:
    """The lifecycle half of extend(): append, score, warm-start refresh."""

    @pytest.fixture(scope="class")
    def fitted_plan_setup(self):
        data = simulate_blobs(300, n_features=5, seed=11)
        w_fair = between_group_quantile_graph(
            data.side_information, data.s, n_quantiles=6
        )
        estimator = PFR(
            n_components=3, gamma=0.5, extension="nystrom", landmarks=80
        )
        plan = LandmarkPlan.for_estimator(estimator, data.X, w_fair)
        plan.fit(estimator)
        rng = np.random.default_rng(13)
        in_dist = data.X[rng.choice(data.X.shape[0], 60, replace=False)]
        drifted = in_dist + 6.0
        return plan, estimator, in_dist, drifted

    def test_unfitted_plan_rejects_lifecycle_extend(self, blob_problem):
        X, w_fair, X_eval = blob_problem
        plan = LandmarkPlan.for_estimator(
            PFR(n_components=2, extension="nystrom", landmarks=40), X, w_fair
        )
        with pytest.raises(ValidationError, match="fitted operating point"):
            plan.extend(X_eval)

    def test_scores_discriminate_drift(self, fitted_plan_setup):
        plan, _, in_dist, drifted = fitted_plan_setup
        assert np.mean(plan.score_rows(in_dist)) > np.mean(
            plan.score_rows(drifted)
        ) + 0.2

    def test_extend_buffers_and_reports(self, fitted_plan_setup):
        plan, _, in_dist, drifted = fitted_plan_setup
        before = plan.n_pending
        ext = plan.extend(in_dist[:10], refresh="never")
        assert isinstance(ext, PlanExtension)
        assert ext.plan is plan and not ext.refreshed
        assert ext.scores.shape == (10,)
        assert plan.n_pending == before + 10
        assert ext.n_pending == plan.n_pending
        # Baseline quantiles come from the fit-time distribution.
        assert 0.0 < ext.baseline["p05"] <= 1.0

    def test_refresh_folds_pending_into_child(self, fitted_plan_setup):
        plan, estimator, _, drifted = fitted_plan_setup
        pending_before = plan.n_pending
        plan.extend(drifted, refresh="never")
        child = plan.refresh()
        assert plan.n_pending == 0  # buffer consumed
        q = pending_before + drifted.shape[0]
        assert child.X.shape[0] == plan.X.shape[0] + q
        assert child.n_landmarks > plan.n_landmarks
        assert child.parent is plan
        # New landmarks come from the pending rows only.
        new_indices = child.indices_[len(plan.indices_):]
        assert (new_indices >= plan.X.shape[0]).all()
        # The child fits a re-budgeted clone and serves unseen rows.
        refit = PFR(
            n_components=3, gamma=0.5, extension="nystrom",
            landmarks=child.n_landmarks,
        )
        child.fit(refit)
        Z = refit.transform(drifted[:5])
        assert Z.shape == (5, 3) and np.isfinite(Z).all()
        # The once-drifted region scores in-distribution under the child.
        assert np.mean(child.score_rows(drifted)) > np.mean(
            plan.score_rows(drifted)
        )

    def test_child_digests_chain_off_parent(self, fitted_plan_setup):
        plan, _, in_dist, _ = fitted_plan_setup
        plan.extend(in_dist, refresh="never")
        child = plan.refresh()
        parent_digests = plan.stage_digests()
        child_digests = child.stage_digests()
        assert "extend" not in parent_digests  # roots emit legacy keys only
        assert "extend" in child_digests
        assert child_digests["landmarks"] != parent_digests["landmarks"]

    def test_extend_leaves_parent_digests_untouched(self, blob_problem):
        # Acceptance: with the refresh feature unused (or merely buffering),
        # existing stage digests stay byte-identical.
        X, w_fair, X_eval = blob_problem
        estimator = PFR(n_components=2, extension="nystrom", landmarks=40)
        plan = LandmarkPlan.for_estimator(estimator, X, w_fair)
        plan.fit(estimator)
        before = dict(plan.stage_digests())
        plan.extend(X_eval, refresh="never")
        assert plan.stage_digests() == before

    def test_refresh_without_pending_raises(self, blob_problem):
        X, w_fair, _ = blob_problem
        plan = LandmarkPlan.for_estimator(
            PFR(n_components=2, extension="nystrom", landmarks=40), X, w_fair
        )
        with pytest.raises(ValidationError, match="no pending rows"):
            plan.refresh()

    def test_refresh_always_mode_returns_child(self, fitted_plan_setup):
        plan, _, in_dist, _ = fitted_plan_setup
        ext = plan.extend(in_dist[:8], refresh="always")
        assert ext.refreshed and ext.plan is not plan
        assert ext.n_pending == 0

    def test_w_fair_new_rides_along(self, fitted_plan_setup):
        plan, _, _, drifted = fitted_plan_setup
        q = drifted.shape[0]
        w_new = np.zeros((q, q))
        w_new[0, 1] = w_new[1, 0] = 1.0
        ext = plan.extend(drifted, w_fair_new=w_new, refresh="never")
        assert ext.plan.n_pending >= q
        child = plan.refresh()
        assert child.subplan.w_fair.shape[0] == child.n_landmarks

    def test_w_fair_new_shape_mismatch_raises(self, fitted_plan_setup):
        plan, _, in_dist, _ = fitted_plan_setup
        with pytest.raises(ValidationError, match="w_fair_new"):
            plan.extend(in_dist, w_fair_new=np.zeros((3, 3)), refresh="never")

    def test_invalid_refresh_mode_raises(self, fitted_plan_setup):
        plan, _, in_dist, _ = fitted_plan_setup
        with pytest.raises(ValidationError, match="refresh"):
            plan.extend(in_dist, refresh="sometimes")


class TestStreamingRegressions:
    """Edge cases the streaming layer flushed out (ISSUE 9 satellite b)."""

    def test_select_landmarks_rejects_non_integer(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(ValidationError, match="integer"):
            select_landmarks(X, 7.5)

    def test_select_landmarks_rejects_m_over_n(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(ValidationError, match=r"\[2, n=20\]"):
            select_landmarks(X, 21)
        with pytest.raises(ValidationError, match=r"\[2, n=20\]"):
            select_landmarks(X, 1)

    def test_nystrom_extend_rejects_empty_batch(self, rng):
        with pytest.raises(ValidationError, match="X_new"):
            nystrom_extend(
                np.empty((0, 3)),
                rng.normal(size=(10, 3)),
                rng.normal(size=(10, 2)),
            )

    def test_nystrom_extend_single_landmark_needs_bandwidth(self, rng):
        X_landmarks = rng.normal(size=(1, 3))
        Z_landmarks = rng.normal(size=(1, 2))
        with pytest.raises(ValidationError, match="bandwidth"):
            nystrom_extend(rng.normal(size=(4, 3)), X_landmarks, Z_landmarks)
        # With an explicit bandwidth the degenerate case is well-defined:
        # every query lands on the lone landmark's embedding.
        Z = nystrom_extend(
            rng.normal(size=(4, 3)), X_landmarks, Z_landmarks, bandwidth=1.0
        )
        np.testing.assert_allclose(Z, np.repeat(Z_landmarks, 4, axis=0))

    def test_extend_rejects_zero_row_batch(self, blob_problem):
        X, w_fair, _ = blob_problem
        estimator = PFR(n_components=2, extension="nystrom", landmarks=40)
        plan = LandmarkPlan.for_estimator(estimator, X, w_fair)
        plan.fit(estimator)
        with pytest.raises(ValidationError, match="X_new"):
            plan.extend(np.empty((0, X.shape[1])), refresh="never")

    def test_extend_rejects_feature_mismatch(self, blob_problem):
        X, w_fair, _ = blob_problem
        estimator = PFR(n_components=2, extension="nystrom", landmarks=40)
        plan = LandmarkPlan.for_estimator(estimator, X, w_fair)
        plan.fit(estimator)
        with pytest.raises(ValidationError, match="features"):
            plan.extend(np.zeros((4, X.shape[1] + 1)), refresh="never")
