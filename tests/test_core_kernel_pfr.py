"""Tests for repro.core.kernel_pfr — the §3.3.4 extension."""

import numpy as np
import pytest

from repro.core import PFR, KernelPFR, kernel_matrix
from repro.exceptions import NotFittedError, ValidationError
from repro.graphs import pairwise_judgment_graph


@pytest.fixture
def ring_data(rng):
    """Two concentric rings — linearly inseparable, kernel-friendly."""
    n = 40
    angles = rng.uniform(0, 2 * np.pi, size=n)
    radii = np.concatenate([np.full(n // 2, 1.0), np.full(n // 2, 3.0)])
    X = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
    y = (radii > 2.0).astype(int)
    return X, y


class TestKernelMatrix:
    def test_linear_kernel(self, rng):
        X = rng.normal(size=(6, 3))
        np.testing.assert_allclose(kernel_matrix(X, kernel="linear"), X @ X.T)

    def test_rbf_diagonal_is_one(self, rng):
        X = rng.normal(size=(8, 2))
        K = kernel_matrix(X, kernel="rbf", bandwidth=1.0)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_bounded(self, rng):
        K = kernel_matrix(rng.normal(size=(10, 2)), kernel="rbf", bandwidth=2.0)
        assert K.min() > 0.0 and K.max() <= 1.0 + 1e-12

    def test_rbf_symmetric_psd(self, rng):
        K = kernel_matrix(rng.normal(size=(12, 3)), kernel="rbf")
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        assert np.linalg.eigvalsh(K).min() > -1e-9

    def test_poly_kernel(self, rng):
        X = rng.normal(size=(5, 2))
        K = kernel_matrix(X, kernel="poly", degree=2, coef0=1.0)
        np.testing.assert_allclose(K, (X @ X.T + 1.0) ** 2)

    def test_cross_kernel_shape(self, rng):
        X = rng.normal(size=(4, 3))
        Y = rng.normal(size=(6, 3))
        assert kernel_matrix(X, Y, kernel="rbf", bandwidth=1.0).shape == (4, 6)

    def test_unknown_kernel(self, rng):
        with pytest.raises(ValidationError, match="kernel"):
            kernel_matrix(rng.normal(size=(3, 2)), kernel="mystery")

    def test_feature_mismatch(self, rng):
        with pytest.raises(ValidationError, match="feature"):
            kernel_matrix(rng.normal(size=(3, 2)), rng.normal(size=(3, 4)))

    def test_invalid_degree(self, rng):
        with pytest.raises(ValidationError, match="degree"):
            kernel_matrix(rng.normal(size=(3, 2)), kernel="poly", degree=0)


class TestKernelPFR:
    def test_shapes(self, ring_data):
        X, _ = ring_data
        WF = pairwise_judgment_graph([(0, 1), (2, 3)], n=len(X))
        model = KernelPFR(n_components=3, gamma=0.5).fit(X, WF)
        assert model.alphas_.shape == (len(X), 3)
        assert model.transform(X).shape == (len(X), 3)

    def test_out_of_sample(self, ring_data, rng):
        X, _ = ring_data
        WF = pairwise_judgment_graph([(0, 1)], n=len(X))
        model = KernelPFR(n_components=2).fit(X, WF)
        Z_new = model.transform(rng.normal(size=(5, 2)))
        assert Z_new.shape == (5, 2)
        assert np.all(np.isfinite(Z_new))

    def test_linear_kernel_spans_linear_pfr_space(self, rng):
        # With a linear kernel, the kernel-PFR embedding must lie in the
        # span of the linear features (rank <= m).
        X = rng.normal(size=(30, 3))
        WF = pairwise_judgment_graph([(0, 1), (4, 7)], n=30)
        model = KernelPFR(n_components=2, kernel="linear", ridge=1e-10).fit(X, WF)
        Z = model.transform(X)
        # residual of projecting Z onto col-space of X should be ~0
        proj, *_ = np.linalg.lstsq(X, Z, rcond=None)
        np.testing.assert_allclose(X @ proj, Z, atol=1e-6)

    def test_deterministic(self, ring_data):
        X, _ = ring_data
        WF = pairwise_judgment_graph([(0, 1)], n=len(X))
        Z1 = KernelPFR(n_components=2, kernel_bandwidth=1.0).fit(X, WF).transform(X)
        Z2 = KernelPFR(n_components=2, kernel_bandwidth=1.0).fit(X, WF).transform(X)
        np.testing.assert_array_equal(Z1, Z2)

    def test_bandwidth_frozen_at_fit(self, ring_data):
        X, _ = ring_data
        WF = pairwise_judgment_graph([(0, 1)], n=len(X))
        model = KernelPFR(n_components=2).fit(X, WF)
        assert model._fitted_bandwidth is not None

    def test_gamma_out_of_range(self, ring_data):
        X, _ = ring_data
        WF = pairwise_judgment_graph([], n=len(X))
        with pytest.raises(ValidationError, match="gamma"):
            KernelPFR(gamma=-0.1).fit(X, WF)

    def test_n_components_bounded_by_n(self, rng):
        X = rng.normal(size=(5, 2))
        WF = pairwise_judgment_graph([], n=5)
        with pytest.raises(ValidationError, match="n_components"):
            KernelPFR(n_components=6).fit(X, WF)

    def test_n_neighbors_clamped_to_n_minus_one(self, rng):
        # Regression: KernelPFR must clamp n_neighbors to n - 1 exactly
        # like PFR.fit does, instead of erroring in the k-NN stage.
        X = rng.normal(size=(8, 3))
        WF = pairwise_judgment_graph([(0, 1)], n=8)
        model = KernelPFR(n_components=2, n_neighbors=50).fit(X, WF)
        clamped = KernelPFR(n_components=2, n_neighbors=7).fit(X, WF)
        np.testing.assert_allclose(model.alphas_, clamped.alphas_)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KernelPFR().transform(np.ones((2, 2)))

    def test_feature_mismatch_at_transform(self, ring_data):
        X, _ = ring_data
        WF = pairwise_judgment_graph([], n=len(X))
        model = KernelPFR(n_components=2).fit(X, WF)
        with pytest.raises(ValidationError, match="features"):
            model.transform(np.ones((3, 5)))

    def test_fit_transform_requires_graph(self, ring_data):
        X, _ = ring_data
        with pytest.raises(ValidationError, match="fairness graph"):
            KernelPFR().fit_transform(X)

    def test_rbf_embedding_separates_rings(self, ring_data):
        # A qualitative check of the kernel extension's value: the rings are
        # not linearly separable in the raw features, but a classifier on
        # the RBF kernel-PFR embedding should separate them well.
        from repro.ml import LogisticRegression

        X, y = ring_data
        WF = pairwise_judgment_graph([], n=len(X))
        raw_accuracy = LogisticRegression().fit(X, y).score(X, y)

        kernel = KernelPFR(
            n_components=6, gamma=0.0, n_neighbors=5, kernel="rbf"
        ).fit(X, WF)
        Z = kernel.transform(X)
        kernel_accuracy = LogisticRegression().fit(Z, y).score(Z, y)
        assert raw_accuracy < 0.8
        assert kernel_accuracy > raw_accuracy
