"""Tests for repro.core.pfr — the PFR estimator."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PFR, pairwise_loss
from repro.exceptions import NotFittedError, ValidationError
from repro.graphs import between_group_quantile_graph, knn_graph, pairwise_judgment_graph


@pytest.fixture
def fitted_pfr(rng):
    X = rng.normal(size=(60, 5))
    groups = np.repeat([0, 1], 30)
    scores = rng.random(60)
    WF = between_group_quantile_graph(scores, groups, n_quantiles=5)
    model = PFR(n_components=3, gamma=0.5).fit(X, WF)
    return model, X, WF


class TestFitTransform:
    def test_output_shape(self, fitted_pfr):
        model, X, _ = fitted_pfr
        assert model.transform(X).shape == (60, 3)

    def test_components_shape(self, fitted_pfr):
        model, X, _ = fitted_pfr
        assert model.components_.shape == (5, 3)
        assert model.eigenvalues_.shape == (3,)

    def test_transform_is_linear(self, fitted_pfr, rng):
        model, X, _ = fitted_pfr
        A = rng.normal(size=(7, 5))
        B = rng.normal(size=(7, 5))
        np.testing.assert_allclose(
            model.transform(A + B),
            model.transform(A) + model.transform(B),
            atol=1e-9,
        )

    def test_out_of_sample_transform(self, fitted_pfr, rng):
        model, _, _ = fitted_pfr
        new = rng.normal(size=(9, 5))
        np.testing.assert_allclose(model.transform(new), new @ model.components_)

    def test_z_constraint_orthonormal_embedding(self, rng):
        X = rng.normal(size=(50, 4))
        WF = pairwise_judgment_graph([(0, 1), (2, 3)], n=50)
        model = PFR(n_components=2, gamma=0.3, constraint="z", ridge=0.0).fit(X, WF)
        Z = model.transform(X)
        # ZᵀZ = Vᵀ(XᵀX)V = I in the generalized mode
        np.testing.assert_allclose(Z.T @ Z, np.eye(2), atol=1e-6)

    def test_v_constraint_orthonormal_basis(self, rng):
        X = rng.normal(size=(50, 4))
        WF = pairwise_judgment_graph([(0, 1)], n=50)
        model = PFR(n_components=2, gamma=0.3, constraint="v").fit(X, WF)
        V = model.components_
        np.testing.assert_allclose(V.T @ V, np.eye(2), atol=1e-9)

    def test_deterministic(self, rng):
        X = rng.normal(size=(40, 4))
        WF = pairwise_judgment_graph([(0, 1), (5, 9)], n=40)
        Z1 = PFR(n_components=2).fit(X, WF).transform(X)
        Z2 = PFR(n_components=2).fit(X, WF).transform(X)
        np.testing.assert_array_equal(Z1, Z2)

    def test_accepts_dense_fairness_graph(self, rng):
        X = rng.normal(size=(20, 3))
        WF = np.zeros((20, 20))
        WF[0, 1] = WF[1, 0] = 1.0
        Z = PFR(n_components=2).fit(X, WF).transform(X)
        assert Z.shape == (20, 2)

    def test_accepts_precomputed_wx(self, rng):
        X = rng.normal(size=(30, 3))
        WX = knn_graph(X, n_neighbors=4)
        WF = pairwise_judgment_graph([(0, 1)], n=30)
        Z = PFR(n_components=2).fit(X, WF, w_x=WX).transform(X)
        assert Z.shape == (30, 2)

    def test_empty_fairness_graph_degrades_gracefully(self, rng):
        X = rng.normal(size=(25, 3))
        WF = sp.csr_matrix((25, 25))
        Z = PFR(n_components=2, gamma=0.5).fit(X, WF).transform(X)
        assert np.all(np.isfinite(Z))


class TestFairnessBehaviour:
    def test_gamma_one_pulls_connected_pairs_together(self, rng):
        # Two clusters far apart; the fairness graph links them pairwise.
        X = np.vstack([
            rng.normal(0.0, 0.3, size=(20, 3)),
            rng.normal(8.0, 0.3, size=(20, 3)),
        ])
        pairs = [(i, 20 + i) for i in range(20)]
        WF = pairwise_judgment_graph(pairs, n=40)

        losses = []
        for gamma in (0.0, 1.0):
            model = PFR(n_components=2, gamma=gamma, n_neighbors=5).fit(X, WF)
            Z = model.transform(X)
            # normalize scale so losses are comparable
            Z = Z / max(np.linalg.norm(Z), 1e-12)
            losses.append(pairwise_loss(Z, WF))
        assert losses[1] < losses[0]

    def test_objective_value_decreases_in_gamma(self, rng):
        X = rng.normal(size=(50, 5))
        groups = np.repeat([0, 1], 25)
        scores = rng.random(50)
        WF = between_group_quantile_graph(scores, groups, n_quantiles=5)
        low = PFR(n_components=2, gamma=0.0).fit(X, WF)
        high = PFR(n_components=2, gamma=1.0).fit(X, WF)
        # normalized fairness loss must be no worse at gamma=1
        def norm_loss(model):
            Z = model.transform(X)
            return pairwise_loss(Z / np.linalg.norm(Z), WF)

        assert norm_loss(high) <= norm_loss(low) + 1e-9

    def test_eigenvalues_ascending(self, fitted_pfr):
        model, _, _ = fitted_pfr
        assert np.all(np.diff(model.eigenvalues_) >= -1e-12)


class TestValidation:
    def test_gamma_out_of_range(self, rng):
        X = rng.normal(size=(10, 2))
        WF = sp.csr_matrix((10, 10))
        with pytest.raises(ValidationError, match="gamma"):
            PFR(gamma=1.5).fit(X, WF)

    def test_n_components_too_large(self, rng):
        X = rng.normal(size=(10, 2))
        WF = sp.csr_matrix((10, 10))
        with pytest.raises(ValidationError, match="n_components"):
            PFR(n_components=3).fit(X, WF)

    def test_graph_size_mismatch(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError, match="nodes"):
            PFR(n_components=2).fit(X, sp.csr_matrix((8, 8)))

    def test_n_neighbors_clamped_to_n_minus_one(self, rng):
        # Regression: n_neighbors >= n must clamp to n - 1, not error.
        X = rng.normal(size=(8, 3))
        WF = sp.csr_matrix((8, 8))
        model = PFR(n_components=2, n_neighbors=50).fit(X, WF)
        clamped = PFR(n_components=2, n_neighbors=7).fit(X, WF)
        np.testing.assert_allclose(model.components_, clamped.components_)

    def test_asymmetric_graph_rejected(self, rng):
        X = rng.normal(size=(5, 2))
        WF = np.zeros((5, 5))
        WF[0, 1] = 1.0
        with pytest.raises(ValidationError, match="symmetric"):
            PFR(n_components=2).fit(X, WF)

    def test_bad_constraint(self, rng):
        X = rng.normal(size=(10, 2))
        WF = sp.csr_matrix((10, 10))
        with pytest.raises(ValidationError, match="constraint"):
            PFR(constraint="q").fit(X, WF)

    def test_bad_rescale(self, rng):
        X = rng.normal(size=(10, 2))
        WF = sp.csr_matrix((10, 10))
        with pytest.raises(ValidationError, match="rescale"):
            PFR(rescale="sometimes").fit(X, WF)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PFR().transform(np.ones((2, 2)))

    def test_transform_feature_mismatch(self, fitted_pfr):
        model, _, _ = fitted_pfr
        with pytest.raises(ValidationError, match="features"):
            model.transform(np.ones((3, 4)))

    def test_fit_transform_requires_graph(self, rng):
        with pytest.raises(ValidationError, match="fairness graph"):
            PFR().fit_transform(rng.normal(size=(10, 2)))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gamma=st.floats(0.0, 1.0),
    d=st.integers(1, 3),
)
def test_pfr_invariants_property(seed, gamma, d):
    """For any seed/γ/d: finite output, correct shapes, ascending spectrum."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(30, 4))
    scores = rng.random(30)
    groups = np.repeat([0, 1], 15)
    WF = between_group_quantile_graph(scores, groups, n_quantiles=3)
    model = PFR(n_components=d, gamma=gamma, n_neighbors=4).fit(X, WF)
    Z = model.transform(X)
    assert Z.shape == (30, d)
    assert np.all(np.isfinite(Z))
    assert np.all(np.diff(model.eigenvalues_) >= -1e-9)
