"""Tests for repro.core.plan — the staged spectral fit pipeline."""

import numpy as np
import pytest

from repro.core import PFR, KernelPFR, SpectralFitPlan, fit_path
from repro.core.plan import Precomputed
from repro.exceptions import ValidationError
from repro.graphs import between_group_quantile_graph


def _workload(rng, n=36, m=6):
    X = rng.normal(size=(n, m))
    groups = np.repeat([0, 1], n // 2)
    scores = rng.random(n)
    WF = between_group_quantile_graph(scores, groups, n_quantiles=4)
    return X, WF


def _fitted_basis(model):
    return model.components_ if isinstance(model, PFR) else model.alphas_


class TestFitPathMatchesFit:
    """Every estimator out of fit_path must equal an independent fit()."""

    @pytest.mark.parametrize("constraint", ["z", "v"])
    @pytest.mark.parametrize("rescale", ["objective", "degree", "none"])
    @pytest.mark.parametrize("kind", ["linear", "kernel"])
    def test_grid_equals_independent_fits(self, rng, kind, rescale, constraint):
        X, WF = _workload(rng)
        if kind == "linear":
            template = PFR(n_components=2, n_neighbors=4,
                           rescale=rescale, constraint=constraint)
            d_max = X.shape[1]
        else:
            template = KernelPFR(n_components=2, n_neighbors=4, kernel="rbf",
                                 rescale=rescale, constraint=constraint)
            d_max = 5
        models = fit_path(
            X, WF, gammas=[0.0, 0.5, 1.0], dims=[1, d_max], estimator=template
        )
        assert len(models) == 6
        for model in models:
            solo = type(model)(**model.get_params()).fit(X, WF)
            np.testing.assert_allclose(
                model.eigenvalues_, solo.eigenvalues_, atol=1e-8
            )
            np.testing.assert_allclose(
                _fitted_basis(model), _fitted_basis(solo), atol=1e-8
            )

    def test_gamma_major_order_and_params(self, rng):
        X, WF = _workload(rng)
        models = fit_path(
            X, WF, gammas=[0.2, 0.8], dims=[1, 3],
            estimator=PFR(n_neighbors=4),
        )
        operating_points = [(m.gamma, m.n_components) for m in models]
        assert operating_points == [(0.2, 1), (0.2, 3), (0.8, 1), (0.8, 3)]
        for model in models:
            assert model.components_.shape == (X.shape[1], model.n_components)

    def test_template_is_not_mutated(self, rng):
        X, WF = _workload(rng)
        template = PFR(n_components=2, gamma=0.4, n_neighbors=4)
        fit_path(X, WF, gammas=[0.0, 1.0], estimator=template)
        assert template.gamma == 0.4
        assert not hasattr(template, "components_")

    def test_default_template_and_dims(self, rng):
        X, WF = _workload(rng)
        models = fit_path(X, WF, gammas=[0.5])
        assert len(models) == 1
        assert isinstance(models[0], PFR)
        assert models[0].n_components == PFR().n_components

    def test_empty_gammas_rejected(self, rng):
        X, WF = _workload(rng)
        with pytest.raises(ValidationError, match="gamma"):
            fit_path(X, WF, gammas=[])

    def test_bad_dims_rejected(self, rng):
        X, WF = _workload(rng)
        with pytest.raises(ValidationError, match="dims"):
            fit_path(X, WF, gammas=[0.5], dims=[0])


class TestStages:
    def test_bundles_are_immutable(self, rng):
        X, WF = _workload(rng)
        plan = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        graph = plan.graph
        assert isinstance(graph, Precomputed)
        with pytest.raises(TypeError):
            graph.data["w_x"] = None
        with pytest.raises(AttributeError):
            graph.digest = "tampered"

    def test_stage_chain_materializes(self, rng):
        X, WF = _workload(rng)
        plan = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        assert plan.graph.stage == "graph"
        assert plan.laplacians.stage == "laplacian"
        assert plan.projection.stage == "projection"
        assert plan.d_max == X.shape[1]
        assert plan.laplacians["L_x"].shape == (X.shape[0], X.shape[0])

    def test_solve_caches_and_slices(self, rng):
        X, WF = _workload(rng)
        plan = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        evals_full, V_full = plan.solve(0.5, 4)
        evals_small, V_small = plan.solve(0.5, 2)
        np.testing.assert_allclose(evals_small, evals_full[:2], atol=1e-10)
        np.testing.assert_allclose(V_small, V_full[:, :2], atol=1e-10)

    def test_solve_validates_gamma_and_d(self, rng):
        X, WF = _workload(rng)
        plan = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        with pytest.raises(ValidationError, match="gamma"):
            plan.solve(1.5, 2)
        with pytest.raises(ValidationError, match=r"d must be"):
            plan.solve(0.5, X.shape[1] + 1)

    def test_structural_mismatch_rejected(self, rng):
        X, WF = _workload(rng)
        plan = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        with pytest.raises(ValidationError, match="incompatible"):
            plan.fit(PFR(n_neighbors=7))
        with pytest.raises(ValidationError, match="kernel plan|linear plan"):
            plan.fit(KernelPFR())

    def test_kernel_rank_limit_message(self, rng):
        X, WF = _workload(rng, n=12)
        plan = SpectralFitPlan.for_estimator(KernelPFR(n_neighbors=4), X, WF)
        with pytest.raises(ValidationError, match="kernel rank"):
            plan.solve(0.5, 13)


class TestDigests:
    def test_digests_are_deterministic(self, rng):
        X, WF = _workload(rng)
        plan_a = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        plan_b = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        assert plan_a.stage_digests() == plan_b.stage_digests()
        digests = plan_a.stage_digests()
        assert set(digests) == {"graph", "laplacian", "projection", "solve"}
        assert all(len(d) == 64 for d in digests.values())

    def test_precomputed_wx_digest_ignores_knn_params(self, rng):
        # With a precomputed data graph the k-NN settings don't influence
        # the stage output, so they must not influence its digest either.
        from repro.graphs import knn_graph

        X, WF = _workload(rng)
        WX = knn_graph(X, n_neighbors=4)
        a = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF, w_x=WX)
        b = SpectralFitPlan.for_estimator(PFR(n_neighbors=9), X, WF, w_x=WX)
        assert a.graph.digest == b.graph.digest

    def test_data_changes_graph_digest(self, rng):
        X, WF = _workload(rng)
        base = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X, WF)
        shifted = SpectralFitPlan.for_estimator(PFR(n_neighbors=4), X + 1.0, WF)
        assert base.graph.digest != shifted.graph.digest

    def test_rescale_changes_downstream_digests_only(self, rng):
        X, WF = _workload(rng)
        obj = SpectralFitPlan.for_estimator(
            PFR(n_neighbors=4, rescale="objective"), X, WF
        ).stage_digests()
        none = SpectralFitPlan.for_estimator(
            PFR(n_neighbors=4, rescale="none"), X, WF
        ).stage_digests()
        assert obj["graph"] == none["graph"]
        assert obj["laplacian"] == none["laplacian"]
        assert obj["projection"] != none["projection"]
        assert obj["solve"] != none["solve"]

    def test_fitted_estimators_carry_digests(self, rng):
        X, WF = _workload(rng)
        linear = PFR(n_components=2, n_neighbors=4).fit(X, WF)
        kernel = KernelPFR(n_components=2, n_neighbors=4).fit(X, WF)
        for model in (linear, kernel):
            assert set(model.plan_digests_) == {
                "graph", "laplacian", "projection", "solve"
            }
        # Same γ-independent digests for every sweep point of one plan.
        sweep = fit_path(X, WF, gammas=[0.1, 0.9],
                         estimator=PFR(n_components=2, n_neighbors=4))
        assert sweep[0].plan_digests_ == sweep[1].plan_digests_
