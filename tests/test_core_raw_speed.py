"""Raw-speed pass guarantees: seed parity, approximate solvers, float32.

Three contracts, in descending order of strictness:

1. **Default-path lockdown** — with ``knn_backend="exact"``, the default
   ``eig_solver`` and ``dtype="float64"``, stage digests and fitted
   arrays are *byte-identical* to the values captured before the
   raw-speed pass landed. Any drift here is a reproducibility break.
2. **Approximate solvers** — ``lobpcg``/``randomized`` fits must reach
   ``embedding_fidelity >= 0.99`` against the dense solve and must
   change the solve digest (they are different numerics, provenance has
   to say so).
3. **float32 pipeline** — opt-in ``dtype="float32"`` flows end to end
   (no silent float64 upcast), reaches fidelity >= 0.99, changes the
   digests, and round-trips through io and the serving registry.
"""

import hashlib

import numpy as np
import pytest

from repro.core import PFR, KernelPFR, fit_path
from repro.core.approx import embedding_fidelity
from repro.exceptions import ValidationError
from repro.graphs import between_group_quantile_graph, knn_graph
from repro.io import load_model, read_header, save_model
from repro.serving import ModelRegistry

# Captured from the seed revision (commit f2fc859) on the baseline
# problem below. These values must never change for default-path fits.
SEED_KNN_SHA = "30320880dbeeef2b8aba82b86f84a8e358305635c8c81f20d1e764b117e357b0"
SEED_PFR_DIGESTS = {
    "graph": "a398c7f04f5598d5995a4c7792835c55d960ae5701a50c9a44ea50df60034b84",
    "laplacian": "ff9e29cab79c81558e268fbc8d437c6d5bd4607482ed12bc50c9e2371a296ca9",
    "projection": "f1a34235d5ce2841809b764a65781fd29e83506d4cfa9d366817d0a483689cd0",
    "solve": "463c66a5826c398f8c0f78224131f657ef022fbd68014cd59c685019b0f5ed6d",
}
SEED_PFR_COMPONENTS_SHA = (
    "59a62104d2712a53bd4347982bcb738484bba7f98a1fead8fcceac7f5e11996b"
)
SEED_KPFR_GRAPH = "b3879fadf7c21ab77265cd8a98b89f96a2a47114b648fc113b521515a8566047"
SEED_KPFR_SOLVE = "868da984bbcebf588852a32ebedef244100e459aad67ba87f2bdb4f36751b186"
SEED_KPFR_ALPHAS_SHA = (
    "d4df3379760d61c9855333cd06725489d2bcbde8a91a93957025face5aa3db7e"
)
SEED_NYSTROM_DIGESTS = {
    "landmarks": "9f9dfd715f83805a481842f20fe86540e95d3bd4ef3ea724981491227869e081",
    "graph": "e1ae71c86f836efe718d0f3b49a6dfc84fc5b6b8305873e8535aa9bb8c41e456",
    "laplacian": "aedb55798f7fdb4ce88261d4d4288324d5f06fb5eca93d601a01caa0dd05c664",
    "projection": "13f8c7f19dc992543c8da30b274677e9a3856fdddb9a04ede6efaba72b5174b6",
    "solve": "c818c400893c6cebe6dd271ffa72604c751ba350ade0e7acb93413c0626654d3",
}
SEED_NYSTROM_COMPONENTS_SHA = (
    "85b1d6369f90799eb0cdcea8026677fa5a8dd5042950d75966f80b811e655f69"
)


def _sha(a) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()


@pytest.fixture(scope="module")
def baseline():
    """The fixed problem every seed digest above was captured on."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(120, 6))
    groups = np.repeat([0, 1], 60)
    scores = rng.random(120)
    WF = between_group_quantile_graph(scores, groups, n_quantiles=4)
    return X, WF


def _pfr(**kw):
    base = dict(n_components=3, gamma=0.5, n_neighbors=5, exclude_columns=[5])
    base.update(kw)
    return PFR(**base)


class TestSeedParity:
    def test_knn_graph_bytes(self, baseline):
        X, _ = baseline
        W = knn_graph(X, n_neighbors=5, exclude=[5])
        digest = hashlib.sha256(
            W.data.tobytes() + W.indices.tobytes() + W.indptr.tobytes()
        ).hexdigest()
        assert digest == SEED_KNN_SHA

    def test_pfr_digests_and_components(self, baseline):
        X, WF = baseline
        m = _pfr().fit(X, WF)
        assert m.plan_digests_ == SEED_PFR_DIGESTS
        assert _sha(m.components_) == SEED_PFR_COMPONENTS_SHA

    def test_kernel_pfr_digests_and_alphas(self, baseline):
        X, WF = baseline
        km = KernelPFR(n_components=3, gamma=0.25, n_neighbors=5).fit(X, WF)
        assert km.plan_digests_["graph"] == SEED_KPFR_GRAPH
        assert km.plan_digests_["solve"] == SEED_KPFR_SOLVE
        assert _sha(km.alphas_) == SEED_KPFR_ALPHAS_SHA

    def test_nystrom_digests_and_components(self, baseline):
        X, WF = baseline
        nm = _pfr(extension="nystrom", landmarks=40, landmark_seed=3).fit(X, WF)
        assert nm.plan_digests_ == SEED_NYSTROM_DIGESTS
        assert _sha(nm.components_) == SEED_NYSTROM_COMPONENTS_SHA

    def test_defaults_unchanged(self):
        # The raw-speed knobs must default to the seed behavior.
        p = PFR().get_params()
        assert p["knn_backend"] == "exact"
        assert p["knn_seed"] == 0
        assert p["dtype"] == "float64"
        k = KernelPFR().get_params()
        assert k["knn_backend"] == "exact"
        assert k["dtype"] == "float64"


class TestBackendsThroughPFR:
    def test_blocked_backend_bitwise_components(self, baseline):
        X, WF = baseline
        exact = _pfr().fit(X, WF)
        blocked = _pfr(knn_backend="blocked").fit(X, WF)
        assert _sha(blocked.components_) == _sha(exact.components_)

    def test_blocked_backend_changes_graph_digest(self, baseline):
        X, WF = baseline
        exact = _pfr().fit(X, WF)
        blocked = _pfr(knn_backend="blocked").fit(X, WF)
        assert blocked.plan_digests_["graph"] != exact.plan_digests_["graph"]

    def test_lsh_backend_high_fidelity(self, baseline):
        X, WF = baseline
        exact = _pfr().fit(X, WF)
        lsh = _pfr(knn_backend="lsh", knn_seed=1).fit(X, WF)
        fidelity = embedding_fidelity(exact.transform(X), lsh.transform(X))
        assert fidelity >= 0.95

    def test_lsh_seed_in_digest(self, baseline):
        X, WF = baseline
        a = _pfr(knn_backend="lsh", knn_seed=1).fit(X, WF)
        b = _pfr(knn_backend="lsh", knn_seed=2).fit(X, WF)
        assert a.plan_digests_["graph"] != b.plan_digests_["graph"]

    def test_backend_ignored_with_precomputed_graph(self, baseline):
        X, WF = baseline
        WX = knn_graph(X, n_neighbors=5, exclude=[5])
        a = _pfr().fit(X, WF, w_x=WX)
        b = _pfr(knn_backend="lsh", knn_seed=9).fit(X, WF, w_x=WX)
        assert a.plan_digests_ == b.plan_digests_

    def test_invalid_backend_rejected(self, baseline):
        X, WF = baseline
        with pytest.raises(ValidationError, match="knn_backend"):
            _pfr(knn_backend="faiss").fit(X, WF)


class TestApproximateSolvers:
    @pytest.mark.parametrize("solver", ["lobpcg", "randomized"])
    def test_fidelity_vs_dense(self, baseline, solver):
        X, WF = baseline
        dense = KernelPFR(
            n_components=3, gamma=0.25, n_neighbors=5, constraint="v"
        ).fit(X, WF)
        approx = KernelPFR(
            n_components=3, gamma=0.25, n_neighbors=5, constraint="v",
            eig_solver=solver,
        ).fit(X, WF)
        fidelity = embedding_fidelity(dense.transform(X), approx.transform(X))
        assert fidelity >= 0.99

    @pytest.mark.parametrize("solver", ["lobpcg", "randomized"])
    def test_solver_changes_solve_digest_only(self, baseline, solver):
        X, WF = baseline
        dense = _pfr().fit(X, WF)
        approx = _pfr(eig_solver=solver).fit(X, WF)
        assert approx.plan_digests_["graph"] == dense.plan_digests_["graph"]
        assert approx.plan_digests_["laplacian"] == dense.plan_digests_["laplacian"]
        assert approx.plan_digests_["solve"] != dense.plan_digests_["solve"]

    def test_generalized_lobpcg_close_to_dense(self, baseline):
        # The PFR default constraint="z" is a generalized eigenproblem;
        # lobpcg supports it natively and must stay close to LAPACK.
        X, WF = baseline
        dense = _pfr().fit(X, WF)
        lob = _pfr(eig_solver="lobpcg").fit(X, WF)
        fidelity = embedding_fidelity(dense.transform(X), lob.transform(X))
        assert fidelity >= 0.99

    def test_invalid_solver_rejected(self, baseline):
        X, WF = baseline
        with pytest.raises(ValidationError, match="eig_solver"):
            _pfr(eig_solver="arpack-shift").fit(X, WF)

    def test_small_problems_fall_back_to_dense_values(self, baseline):
        # Below the iterative-solver size guards the lobpcg/randomized
        # branches must return the dense answer exactly.
        X, WF = baseline
        X, WF = X[:30], WF[:30, :30]
        dense = _pfr(n_neighbors=4).fit(X, WF)
        for solver in ("lobpcg", "randomized"):
            approx = _pfr(n_neighbors=4, eig_solver=solver).fit(X, WF)
            np.testing.assert_array_equal(approx.components_, dense.components_)


class TestFloat32Pipeline:
    def test_pfr_end_to_end_float32(self, baseline):
        X, WF = baseline
        m = _pfr(dtype="float32").fit(X, WF)
        assert m.components_.dtype == np.float32
        assert m.eigenvalues_.dtype == np.float32
        Z = m.transform(X)
        assert Z.dtype == np.float32

    def test_pfr_float32_fidelity(self, baseline):
        X, WF = baseline
        m64 = _pfr().fit(X, WF)
        m32 = _pfr(dtype="float32").fit(X, WF)
        fidelity = embedding_fidelity(m64.transform(X), m32.transform(X))
        assert fidelity >= 0.99

    def test_kernel_pfr_end_to_end_float32(self, baseline):
        X, WF = baseline
        km64 = KernelPFR(n_components=3, gamma=0.25, n_neighbors=5).fit(X, WF)
        km32 = KernelPFR(
            n_components=3, gamma=0.25, n_neighbors=5, dtype="float32"
        ).fit(X, WF)
        assert km32.alphas_.dtype == np.float32
        Z = km32.transform(X)
        assert Z.dtype == np.float32
        assert embedding_fidelity(km64.transform(X), Z) >= 0.99

    def test_nystrom_float32(self, baseline):
        X, WF = baseline
        nm64 = _pfr(extension="nystrom", landmarks=40, landmark_seed=3).fit(X, WF)
        nm32 = _pfr(
            extension="nystrom", landmarks=40, landmark_seed=3, dtype="float32"
        ).fit(X, WF)
        assert nm32.components_.dtype == np.float32
        assert nm32.transform(X).dtype == np.float32
        fidelity = embedding_fidelity(nm64.transform(X), nm32.transform(X))
        assert fidelity >= 0.99

    def test_float32_changes_digests(self, baseline):
        X, WF = baseline
        m64 = _pfr().fit(X, WF)
        m32 = _pfr(dtype="float32").fit(X, WF)
        for stage in ("graph", "laplacian", "projection", "solve"):
            assert m32.plan_digests_[stage] != m64.plan_digests_[stage]

    def test_fit_path_threads_numeric_knobs(self, baseline):
        X, WF = baseline
        models = fit_path(
            X, WF, gammas=(0.0, 1.0), dims=(2,),
            estimator=PFR(n_neighbors=5, exclude_columns=[5],
                          dtype="float32", knn_backend="blocked"),
        )
        assert len(models) == 2
        assert all(m.components_.dtype == np.float32 for m in models)

    def test_invalid_dtype_rejected(self, baseline):
        X, WF = baseline
        with pytest.raises(ValidationError, match="dtype"):
            _pfr(dtype="float16").fit(X, WF)


class TestPersistenceAndServing:
    def test_io_round_trip_float32(self, baseline, tmp_path):
        X, WF = baseline
        m = _pfr(dtype="float32", knn_backend="blocked").fit(X, WF)
        restored = load_model(save_model(m, tmp_path / "pfr32"))
        assert restored.components_.dtype == np.float32
        np.testing.assert_array_equal(restored.components_, m.components_)
        np.testing.assert_array_equal(restored.transform(X), m.transform(X))
        header = read_header(tmp_path / "pfr32.npz")
        assert header["params"]["dtype"] == "float32"
        assert header["params"]["knn_backend"] == "blocked"

    def test_registry_manifest_records_numeric_knobs(self, baseline, tmp_path):
        X, WF = baseline
        m = _pfr(dtype="float32", knn_backend="lsh", knn_seed=4,
                 eig_solver="lobpcg").fit(X, WF)
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.register("pfr32", m)
        assert record.params["dtype"] == "float32"
        assert record.params["knn_backend"] == "lsh"
        assert record.params["knn_seed"] == 4
        assert record.params["eig_solver"] == "lobpcg"
        # The on-disk record is what `models show` renders; read it back
        # with a fresh registry to prove the knobs survived serialization.
        fresh = ModelRegistry(tmp_path / "registry").record("pfr32", 1)
        assert fresh.params["knn_backend"] == "lsh"
        assert fresh.params["dtype"] == "float32"

    def test_registry_round_trip_serves_float32(self, baseline, tmp_path):
        X, WF = baseline
        m = _pfr(dtype="float32").fit(X, WF)
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("pfr32", m)
        served = registry.load("pfr32")
        assert served.transform(X).dtype == np.float32
