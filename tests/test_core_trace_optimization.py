"""Tests for repro.core.trace_optimization — the eigensolver layer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    objective_matrix,
    pairwise_loss,
    sign_normalize,
    smallest_eigenvectors,
)
from repro.exceptions import ValidationError
from repro.graphs import laplacian


@pytest.fixture
def spd_matrix(rng):
    A = rng.normal(size=(12, 12))
    return A @ A.T + 0.1 * np.eye(12)


class TestSmallestEigenvectors:
    def test_matches_numpy(self, spd_matrix):
        values, vectors = smallest_eigenvectors(spd_matrix, 4, solver="dense")
        reference = np.sort(np.linalg.eigvalsh(spd_matrix))[:4]
        np.testing.assert_allclose(values, reference, atol=1e-9)

    def test_orthonormal(self, spd_matrix):
        _, V = smallest_eigenvectors(spd_matrix, 5)
        np.testing.assert_allclose(V.T @ V, np.eye(5), atol=1e-9)

    def test_eigen_equation(self, spd_matrix):
        values, V = smallest_eigenvectors(spd_matrix, 3)
        np.testing.assert_allclose(spd_matrix @ V, V * values, atol=1e-8)

    def test_ascending_order(self, spd_matrix):
        values, _ = smallest_eigenvectors(spd_matrix, 6)
        assert np.all(np.diff(values) >= -1e-12)

    def test_sparse_solver_agrees_with_dense(self, rng):
        A = rng.normal(size=(60, 60))
        M = sp.csr_matrix(A @ A.T + 0.5 * np.eye(60))
        dense_vals, _ = smallest_eigenvectors(M, 3, solver="dense")
        sparse_vals, _ = smallest_eigenvectors(M, 3, solver="sparse")
        np.testing.assert_allclose(sparse_vals, dense_vals, atol=1e-6)

    def test_sparse_falls_back_when_d_too_large(self, spd_matrix):
        M = sp.csr_matrix(spd_matrix)
        values, _ = smallest_eigenvectors(M, 11, solver="sparse")
        reference = np.sort(np.linalg.eigvalsh(spd_matrix))[:11]
        np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_sparse_path_keeps_operator_sparse(self, rng, monkeypatch):
        # Regression: the Lanczos branch once materialized a shifted copy
        # of the operator (and coerced dense input through an extra sparse
        # conversion). The spectral shift must now be applied implicitly —
        # toarray() on the input must never be called on the sparse path.
        X = rng.normal(size=(400, 4))
        from repro.graphs import knn_graph

        L = laplacian(knn_graph(X, n_neighbors=5))

        def forbidden(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("sparse solver densified the operator")

        monkeypatch.setattr(sp.csr_matrix, "toarray", forbidden)
        monkeypatch.setattr(sp.csc_matrix, "toarray", forbidden)
        values, vectors = smallest_eigenvectors(L, 4, solver="sparse")
        assert values.shape == (4,) and vectors.shape == (400, 4)

    def test_sparse_and_dense_eigenpairs_agree_on_laplacian(self, rng):
        # Full regression for the solver pair on the operator family PFR
        # actually feeds it: graph Laplacians with a degenerate smallest
        # eigenvalue per connected component. Eigenvalues and (up to the
        # deterministic sign convention) eigenvectors must agree.
        X = rng.normal(size=(300, 5))
        from repro.graphs import knn_graph

        L = laplacian(knn_graph(X, n_neighbors=6))
        dense_vals, dense_vecs = smallest_eigenvectors(L, 4, solver="dense")
        sparse_vals, sparse_vecs = smallest_eigenvectors(L, 4, solver="sparse")
        np.testing.assert_allclose(sparse_vals, dense_vals, atol=1e-9)
        np.testing.assert_allclose(
            np.abs(sparse_vecs), np.abs(dense_vecs), atol=1e-7
        )

    def test_sparse_path_accepts_dense_input(self, rng):
        A = rng.normal(size=(50, 50))
        M = A @ A.T + 0.5 * np.eye(50)
        dense_vals, _ = smallest_eigenvectors(M, 3, solver="dense")
        sparse_vals, _ = smallest_eigenvectors(M, 3, solver="sparse")
        np.testing.assert_allclose(sparse_vals, dense_vals, atol=1e-8)

    def test_generalized_problem(self, rng):
        A = rng.normal(size=(10, 10))
        M = A @ A.T
        Bm = rng.normal(size=(10, 10))
        B = Bm @ Bm.T + np.eye(10)
        values, V = smallest_eigenvectors(M, 3, B=B)
        # generalized eigen equation M v = λ B v
        np.testing.assert_allclose(M @ V, B @ V * values, atol=1e-8)
        # B-orthonormality
        np.testing.assert_allclose(V.T @ B @ V, np.eye(3), atol=1e-8)

    def test_generalized_shape_mismatch(self, spd_matrix):
        with pytest.raises(ValidationError, match="shape"):
            smallest_eigenvectors(spd_matrix, 2, B=np.eye(3))

    def test_d_out_of_range(self, spd_matrix):
        with pytest.raises(ValidationError):
            smallest_eigenvectors(spd_matrix, 0)
        with pytest.raises(ValidationError):
            smallest_eigenvectors(spd_matrix, 13)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError, match="square"):
            smallest_eigenvectors(np.ones((3, 4)), 1)

    def test_unknown_solver(self, spd_matrix):
        with pytest.raises(ValidationError, match="solver"):
            smallest_eigenvectors(spd_matrix, 2, solver="quantum")

    def test_deterministic_signs(self, spd_matrix):
        _, V1 = smallest_eigenvectors(spd_matrix, 4)
        _, V2 = smallest_eigenvectors(spd_matrix, 4)
        np.testing.assert_array_equal(V1, V2)


class TestSignNormalize:
    def test_largest_entry_positive(self, rng):
        V = rng.normal(size=(8, 3))
        out = sign_normalize(V)
        for j in range(3):
            assert out[np.argmax(np.abs(out[:, j])), j] > 0

    def test_idempotent(self, rng):
        V = rng.normal(size=(6, 2))
        once = sign_normalize(V)
        np.testing.assert_array_equal(once, sign_normalize(once))

    def test_does_not_mutate_input(self, rng):
        V = rng.normal(size=(5, 2))
        V[0] = -10.0
        before = V.copy()
        sign_normalize(V)
        np.testing.assert_array_equal(V, before)

    def test_matches_per_column_reference(self, rng):
        # Pins the vectorized implementation to the original per-column
        # loop, including first-max tie-breaking on equal |pivots|.
        def reference(V):
            V = np.array(V, dtype=np.float64, copy=True)
            for j in range(V.shape[1]):
                pivot = np.argmax(np.abs(V[:, j]))
                if V[pivot, j] < 0:
                    V[:, j] = -V[:, j]
            return V

        for shape in [(1, 1), (7, 1), (8, 3), (20, 12), (3, 9)]:
            V = rng.normal(size=shape)
            np.testing.assert_array_equal(sign_normalize(V), reference(V))
        ties = np.array([[-2.0, 2.0, 0.5], [2.0, -2.0, -0.5], [1.0, 1.0, 0.1]])
        np.testing.assert_array_equal(sign_normalize(ties), reference(ties))

    def test_empty_matrix(self):
        out = sign_normalize(np.empty((0, 3)))
        assert out.shape == (0, 3)


class TestObjectiveMatrix:
    def test_symmetry(self, rng, knn_setup):
        X, W = knn_setup
        M = objective_matrix(X, laplacian(W))
        np.testing.assert_allclose(M, M.T, atol=1e-12)

    def test_psd(self, knn_setup):
        X, W = knn_setup
        M = objective_matrix(X, laplacian(W))
        assert np.linalg.eigvalsh(M).min() > -1e-9

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValidationError, match="nodes"):
            objective_matrix(rng.normal(size=(5, 2)), laplacian(np.zeros((4, 4))))

    def test_quadratic_form_equals_pairwise_loss(self, rng, knn_setup):
        # vᵀ (XᵀLX) v == ½ Σ W_ij ((Xv)_i - (Xv)_j)²
        X, W = knn_setup
        M = objective_matrix(X, laplacian(W))
        v = rng.normal(size=X.shape[1])
        assert float(v @ M @ v) == pytest.approx(
            0.5 * pairwise_loss(X @ v, W), rel=1e-9
        )


class TestPairwiseLoss:
    def test_matches_direct_sum(self, rng):
        Z = rng.normal(size=(15, 3))
        W = rng.random((15, 15))
        W = 0.5 * (W + W.T)
        np.fill_diagonal(W, 0.0)
        direct = sum(
            W[i, j] * np.sum((Z[i] - Z[j]) ** 2)
            for i in range(15)
            for j in range(15)
        )
        assert pairwise_loss(Z, sp.csr_matrix(W)) == pytest.approx(direct, rel=1e-9)

    def test_zero_for_identical_embeddings(self):
        Z = np.ones((6, 2))
        W = np.ones((6, 6)) - np.eye(6)
        assert pairwise_loss(Z, W) == pytest.approx(0.0, abs=1e-12)

    def test_1d_embedding_accepted(self, rng):
        W = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert pairwise_loss(np.array([0.0, 2.0]), W) == pytest.approx(8.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="nodes"):
            pairwise_loss(np.ones((3, 2)), np.zeros((4, 4)))
