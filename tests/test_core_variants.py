"""Tests for the PFR/KernelPFR formulation variants and utility methods."""

import numpy as np
import pytest

from repro.core import PFR, KernelPFR, pairwise_loss
from repro.graphs import between_group_quantile_graph, knn_graph, pairwise_judgment_graph


@pytest.fixture
def setup(rng):
    X = rng.normal(size=(45, 4))
    scores = rng.random(45)
    groups = np.arange(45) % 2
    WF = between_group_quantile_graph(scores, groups, n_quantiles=3)
    return X, WF


class TestPFRVariants:
    @pytest.mark.parametrize("rescale", ["objective", "degree", "none"])
    def test_rescale_modes_run(self, setup, rescale):
        X, WF = setup
        Z = PFR(n_components=2, gamma=0.5, n_neighbors=4,
                rescale=rescale).fit(X, WF).transform(X)
        assert np.all(np.isfinite(Z))

    def test_rescale_modes_differ_at_mid_gamma(self, setup):
        X, WF = setup
        kwargs = dict(n_components=2, gamma=0.5, n_neighbors=4)
        objective = PFR(rescale="objective", **kwargs).fit(X, WF)
        none = PFR(rescale="none", **kwargs).fit(X, WF)
        assert not np.allclose(objective.components_, none.components_)

    def test_rescale_modes_agree_at_gamma_zero(self, setup):
        X, WF = setup
        kwargs = dict(n_components=2, gamma=0.0, n_neighbors=4, constraint="z")
        a = PFR(rescale="objective", **kwargs).fit(X, WF)
        b = PFR(rescale="none", **kwargs).fit(X, WF)
        # at γ=0 both reduce to the pure WX objective, up to overall scale,
        # and the generalized eigenvectors are scale-invariant.
        np.testing.assert_allclose(a.components_, b.components_, atol=1e-8)

    def test_normalized_laplacian_mode(self, setup):
        X, WF = setup
        Z = PFR(n_components=2, gamma=0.5, n_neighbors=4,
                normalized_laplacian=True).fit(X, WF).transform(X)
        assert np.all(np.isfinite(Z))

    def test_objective_value_matches_pairwise_loss(self, setup):
        X, WF = setup
        model = PFR(n_components=2, gamma=0.7, n_neighbors=4).fit(X, WF)
        assert model.objective_value(X, WF) == pytest.approx(
            pairwise_loss(model.transform(X), WF)
        )

    def test_precomputed_wx_equals_internal_graph(self, rng):
        X = rng.normal(size=(30, 3))
        WF = pairwise_judgment_graph([(0, 1)], n=30)
        WX = knn_graph(X, n_neighbors=5)
        internal = PFR(n_components=2, n_neighbors=5).fit(X, WF)
        external = PFR(n_components=2).fit(X, WF, w_x=WX)
        np.testing.assert_allclose(
            internal.components_, external.components_, atol=1e-10
        )


class TestKernelPFRVariants:
    @pytest.mark.parametrize("rescale", ["objective", "degree", "none"])
    @pytest.mark.parametrize("constraint", ["z", "v"])
    def test_all_combinations_run(self, setup, rescale, constraint):
        X, WF = setup
        model = KernelPFR(
            n_components=2,
            gamma=0.5,
            n_neighbors=4,
            kernel="rbf",
            rescale=rescale,
            constraint=constraint,
        ).fit(X, WF)
        assert np.all(np.isfinite(model.transform(X)))

    def test_invalid_constraint(self, setup):
        X, WF = setup
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="constraint"):
            KernelPFR(constraint="w").fit(X, WF)

    def test_linear_kernel_agrees_with_linear_pfr_on_embedding_loss(self, setup):
        # Same objective family: the kernelized linear model cannot do
        # worse than the primal on the (normalized) training objective.
        X, WF = setup
        WX = knn_graph(X, n_neighbors=4)
        primal = PFR(n_components=2, gamma=1.0).fit(X, WF, w_x=WX)
        dual = KernelPFR(n_components=2, gamma=1.0, kernel="linear").fit(
            X, WF, w_x=WX
        )

        def normalized_loss(Z):
            return pairwise_loss(Z / np.linalg.norm(Z), WF)

        assert normalized_loss(dual.transform(X)) <= normalized_loss(
            primal.transform(X)
        ) * 1.05 + 1e-9
