"""Tests for repro.datasets.base — the Dataset container."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.exceptions import DatasetError, ValidationError


@pytest.fixture
def dataset():
    return Dataset(
        name="toy",
        X=np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 1.0], [4.0, 1.0]]),
        y=np.array([0, 1, 0, 1]),
        s=np.array([0, 0, 1, 1]),
        feature_names=("score", "group"),
        protected_columns=(1,),
        side_information=np.array([1.0, 2.0, np.nan, 4.0]),
        side_information_name="rating",
    )


class TestConstruction:
    def test_basic_properties(self, dataset):
        assert dataset.n_samples == 4
        assert dataset.n_features == 2
        assert dataset.feature_names == ("score", "group")

    def test_group_sizes(self, dataset):
        assert dataset.group_sizes() == {0: 2, 1: 2}

    def test_base_rates(self, dataset):
        rates = dataset.base_rates()
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)

    def test_table1_row(self, dataset):
        row = dataset.table1_row()
        assert row["dataset"] == "toy"
        assert row["n"] == 4
        assert row["n_s0"] == 2 and row["n_s1"] == 2

    def test_nonprotected_view(self, dataset):
        view = dataset.nonprotected_view()
        np.testing.assert_allclose(view, dataset.X[:, :1])

    def test_frozen(self, dataset):
        with pytest.raises(Exception):
            dataset.name = "other"


class TestSubset:
    def test_subset_rows(self, dataset):
        sub = dataset.subset([0, 2])
        assert sub.n_samples == 2
        np.testing.assert_allclose(sub.X[:, 0], [1.0, 3.0])
        np.testing.assert_array_equal(sub.y, [0, 0])
        np.testing.assert_array_equal(sub.s, [0, 1])

    def test_subset_carries_side_information(self, dataset):
        sub = dataset.subset([0, 3])
        np.testing.assert_allclose(sub.side_information, [1.0, 4.0])

    def test_subset_without_side_information(self):
        data = Dataset(
            name="plain",
            X=np.ones((3, 1)),
            y=np.array([0, 1, 0]),
            s=np.array([0, 1, 0]),
            feature_names=("a",),
            protected_columns=(),
        )
        assert data.subset([0]).side_information is None


class TestValidationErrors:
    def test_wrong_feature_name_count(self):
        with pytest.raises(DatasetError, match="feature names"):
            Dataset(
                name="bad",
                X=np.ones((2, 2)),
                y=np.array([0, 1]),
                s=np.array([0, 1]),
                feature_names=("only-one",),
                protected_columns=(),
            )

    def test_protected_column_out_of_range(self):
        with pytest.raises(DatasetError, match="out of range"):
            Dataset(
                name="bad",
                X=np.ones((2, 2)),
                y=np.array([0, 1]),
                s=np.array([0, 1]),
                feature_names=("a", "b"),
                protected_columns=(9,),
            )

    def test_non_binary_labels(self):
        with pytest.raises(ValidationError):
            Dataset(
                name="bad",
                X=np.ones((2, 1)),
                y=np.array([0, 7]),
                s=np.array([0, 1]),
                feature_names=("a",),
                protected_columns=(),
            )

    def test_side_information_length_mismatch(self):
        with pytest.raises(DatasetError, match="side information"):
            Dataset(
                name="bad",
                X=np.ones((2, 1)),
                y=np.array([0, 1]),
                s=np.array([0, 1]),
                feature_names=("a",),
                protected_columns=(),
                side_information=np.ones(5),
            )

    def test_label_length_mismatch(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            Dataset(
                name="bad",
                X=np.ones((3, 1)),
                y=np.array([0, 1]),
                s=np.array([0, 1, 0]),
                feature_names=("a",),
                protected_columns=(),
            )
