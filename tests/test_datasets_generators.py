"""Tests for the dataset simulators: synthetic admissions, COMPAS, Crime.

These check Table 1 calibration (at full size), schema integrity, and the
structural properties the experiments rely on.
"""

import numpy as np
import pytest

from repro.datasets import (
    ADMISSIONS_FEATURES,
    COMPAS_FEATURES,
    CRIME_FEATURES,
    simulate_admissions,
    simulate_blobs,
    simulate_compas,
    simulate_crime,
)
from repro.exceptions import DatasetError


class TestAdmissions:
    def test_shapes_and_schema(self, small_admissions):
        data = small_admissions
        assert data.X.shape == (120, 3)
        assert data.feature_names == ADMISSIONS_FEATURES
        assert data.protected_columns == (2,)

    def test_group_sizes(self, small_admissions):
        assert small_admissions.group_sizes() == {0: 60, 1: 60}

    def test_protected_column_matches_s(self, small_admissions):
        np.testing.assert_array_equal(
            small_admissions.X[:, 2].astype(int), small_admissions.s
        )

    def test_base_rates_near_half_at_scale(self):
        data = simulate_admissions(5000, seed=0)
        rates = data.base_rates()
        assert rates[0] == pytest.approx(0.51, abs=0.03)
        assert rates[1] == pytest.approx(0.48, abs=0.03)

    def test_group_zero_has_higher_sat(self):
        data = simulate_admissions(2000, seed=1)
        sat = data.X[:, 1]
        assert sat[data.s == 0].mean() > sat[data.s == 1].mean() + 5.0

    def test_labels_follow_group_thresholds(self, small_admissions):
        data = small_admissions
        total = data.X[:, 0] + data.X[:, 1]
        for group, threshold in ((0, 210.0), (1, 200.0)):
            members = data.s == group
            np.testing.assert_array_equal(
                data.y[members], (total[members] >= threshold).astype(int)
            )

    def test_deterministic_in_seed(self):
        a = simulate_admissions(50, seed=9)
        b = simulate_admissions(50, seed=9)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = simulate_admissions(50, seed=1)
        b = simulate_admissions(50, seed=2)
        assert not np.allclose(a.X, b.X)

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            simulate_admissions(1)

    def test_no_shuffle_orders_groups(self):
        data = simulate_admissions(10, seed=0, shuffle=False)
        np.testing.assert_array_equal(data.s, [0] * 10 + [1] * 10)


class TestCompas:
    def test_schema(self, small_compas):
        assert small_compas.feature_names == COMPAS_FEATURES
        assert small_compas.protected_columns == (6,)
        assert small_compas.X.shape[1] == 7

    def test_table1_calibration_full_size(self):
        data = simulate_compas(4218, 4585, seed=0)
        row = data.table1_row()
        assert row["n"] == 8803
        assert row["base_rate_s0"] == pytest.approx(0.41, abs=0.02)
        assert row["base_rate_s1"] == pytest.approx(0.55, abs=0.02)

    def test_deciles_range(self, small_compas):
        deciles = small_compas.side_information
        assert deciles.min() >= 1 and deciles.max() <= 10

    def test_deciles_are_within_group_balanced(self):
        # Within each group the decile histogram must be flat (deciles!).
        data = simulate_compas(500, 500, seed=1)
        for group in (0, 1):
            deciles = data.side_information[data.s == group]
            counts = np.bincount(deciles.astype(int), minlength=11)[1:]
            assert counts.max() - counts.min() <= 2

    def test_deciles_correlate_with_label(self):
        data = simulate_compas(1000, 1000, seed=2)
        correlation = np.corrcoef(data.side_information, data.y)[0, 1]
        assert correlation > 0.1

    def test_enforcement_inflates_protected_priors(self):
        data = simulate_compas(1500, 1500, seed=3)
        priors = data.X[:, 3]  # log1p_priors
        assert priors[data.s == 1].mean() > priors[data.s == 0].mean()

    def test_age_positive(self, small_compas):
        age = small_compas.X[:, 1]
        assert age.min() >= 18.0 and age.max() <= 70.0

    def test_protected_column_matches_s(self, small_compas):
        np.testing.assert_array_equal(
            small_compas.X[:, 6].astype(int), small_compas.s
        )

    def test_deterministic(self):
        a = simulate_compas(100, 100, seed=4)
        b = simulate_compas(100, 100, seed=4)
        np.testing.assert_array_equal(a.X, b.X)

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            simulate_compas(5, 100)


class TestCrime:
    def test_schema(self, small_crime):
        assert small_crime.feature_names == CRIME_FEATURES
        assert small_crime.protected_columns == (len(CRIME_FEATURES) - 1,)

    def test_table1_calibration_full_size(self):
        data = simulate_crime(1423, 570, seed=0)
        row = data.table1_row()
        assert row["n"] == 1993
        assert row["base_rate_s0"] == pytest.approx(0.35, abs=0.03)
        assert row["base_rate_s1"] == pytest.approx(0.86, abs=0.03)

    def test_ratings_partially_observed(self, small_crime):
        ratings = small_crime.side_information
        observed = ~np.isnan(ratings)
        assert 0.5 < observed.mean() < 0.95

    def test_ratings_in_star_range(self, small_crime):
        ratings = small_crime.side_information
        observed = ratings[~np.isnan(ratings)]
        assert observed.min() >= 1.0 and observed.max() <= 5.0

    def test_ratings_anticorrelate_with_violence(self):
        data = simulate_crime(800, 320, seed=1)
        ratings = data.side_information
        observed = ~np.isnan(ratings)
        correlation = np.corrcoef(ratings[observed], data.y[observed])[0, 1]
        assert correlation < -0.2

    def test_wealth_proxy_correlates_with_label(self):
        data = simulate_crime(800, 320, seed=2)
        income = data.X[:, 0]  # med_income
        assert np.corrcoef(income, data.y)[0, 1] < -0.3

    def test_pct_white_tracks_group(self):
        data = simulate_crime(400, 160, seed=3)
        pct_white = data.X[:, list(CRIME_FEATURES).index("pct_white")]
        assert pct_white[data.s == 0].mean() > pct_white[data.s == 1].mean() + 0.3

    def test_deterministic(self):
        a = simulate_crime(100, 50, seed=5)
        b = simulate_crime(100, 50, seed=5)
        np.testing.assert_array_equal(a.X, b.X)

    def test_metadata_has_violence_score(self, small_crime):
        assert "violence_score" in small_crime.metadata
        assert len(small_crime.metadata["violence_score"]) == small_crime.n_samples


class TestBlobs:
    def test_schema(self):
        data = simulate_blobs(200, n_features=5, seed=0)
        assert data.name == "blobs"
        assert data.X.shape == (200, 6)  # 5 features + protected indicator
        assert data.feature_names[-1] == "group"
        assert data.protected_columns == (5,)
        np.testing.assert_array_equal(data.X[:, 5], data.s)

    def test_side_information_present_everywhere(self):
        data = simulate_blobs(150, seed=1)
        assert data.side_information is not None
        assert np.isfinite(data.side_information).all()

    def test_base_rates_half_per_group(self):
        data = simulate_blobs(2000, seed=2)
        for value in (0, 1):
            members = data.s == value
            assert abs(data.y[members].mean() - 0.5) < 0.05

    def test_deterministic_in_seed(self):
        a = simulate_blobs(100, seed=7)
        b = simulate_blobs(100, seed=7)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_scales_to_large_n(self):
        data = simulate_blobs(100_000, n_features=10, seed=0)
        assert data.X.shape == (100_000, 11)

    def test_group_shift_moves_first_feature(self):
        data = simulate_blobs(5000, group_shift=3.0, seed=3)
        f0 = data.X[:, 0]
        assert f0[data.s == 1].mean() > f0[data.s == 0].mean() + 1.0

    def test_validation(self):
        with pytest.raises(DatasetError):
            simulate_blobs(2)
        with pytest.raises(DatasetError):
            simulate_blobs(100, n_features=1)
        with pytest.raises(DatasetError):
            simulate_blobs(100, n_clusters=0)
