"""Tests for the real-file loaders (load_compas, load_crime) against
synthesized fixture files."""

import numpy as np
import pytest

from repro.datasets import load_compas, load_crime
from repro.exceptions import DatasetError

COMPAS_HEADER = (
    "sex,age,race,juv_fel_count,juv_misd_count,juv_other_count,priors_count,"
    "c_charge_degree,days_b_screening_arrest,is_recid,decile_score,"
    "two_year_recid,c_jail_in,c_jail_out"
)


def _compas_row(
    *,
    sex="Male",
    age=30,
    race="African-American",
    juv=(0, 0, 0),
    priors=2,
    degree="F",
    days=0,
    is_recid=0,
    decile=5,
    recid=0,
    jail_in="2013-01-01 10:00:00",
    jail_out="2013-01-05 10:00:00",
):
    return (
        f"{sex},{age},{race},{juv[0]},{juv[1]},{juv[2]},{priors},{degree},"
        f"{days},{is_recid},{decile},{recid},{jail_in},{jail_out}"
    )


@pytest.fixture
def compas_csv(tmp_path):
    rows = [COMPAS_HEADER]
    for i in range(20):
        rows.append(
            _compas_row(
                sex="Male" if i % 2 else "Female",
                race="African-American" if i % 2 else "Caucasian",
                priors=i,
                decile=(i % 10) + 1,
                recid=i % 2,
            )
        )
    # rows that the standard filters must drop:
    rows.append(_compas_row(days=45))       # screening too far from arrest
    rows.append(_compas_row(is_recid=-1))   # no recidivism outcome
    rows.append(_compas_row(degree="O"))    # ordinary traffic offense
    path = tmp_path / "compas-scores-two-years.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


class TestLoadCompas:
    def test_loads_and_filters(self, compas_csv):
        data = load_compas(compas_csv)
        assert data.n_samples == 20  # the 3 bad rows are dropped
        assert data.name == "compas"

    def test_schema(self, compas_csv):
        data = load_compas(compas_csv)
        assert data.X.shape[1] == 7
        assert data.protected_columns == (6,)

    def test_race_mapping(self, compas_csv):
        data = load_compas(compas_csv)
        assert data.s.sum() == 10  # half the kept rows are African-American

    def test_log_transforms_applied(self, compas_csv):
        data = load_compas(compas_csv)
        priors = data.X[:, 3]
        assert priors.max() <= np.log1p(19) + 1e-9

    def test_length_of_stay_computed(self, compas_csv):
        data = load_compas(compas_csv)
        los = data.X[:, 5]
        np.testing.assert_allclose(los, np.log1p(4.0), atol=1e-9)

    def test_decile_side_information(self, compas_csv):
        data = load_compas(compas_csv)
        assert data.side_information.min() >= 1
        assert data.side_information.max() <= 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_compas(tmp_path / "nope.csv")

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sex,age\nMale,30\n")
        with pytest.raises(DatasetError, match="missing columns"):
            load_compas(path)

    def test_too_few_rows(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text(COMPAS_HEADER + "\n" + _compas_row() + "\n")
        with pytest.raises(DatasetError, match="too few"):
            load_compas(path)

    def test_malformed_jail_dates_become_zero(self, tmp_path):
        rows = [COMPAS_HEADER]
        for i in range(10):
            rows.append(_compas_row(jail_in="", jail_out=""))
        path = tmp_path / "nolos.csv"
        path.write_text("\n".join(rows) + "\n")
        data = load_compas(path)
        np.testing.assert_allclose(data.X[:, 5], 0.0)


@pytest.fixture
def crime_data_file(tmp_path):
    rng = np.random.default_rng(0)
    lines = []
    for i in range(30):
        identifiers = ["1", "2", "3", f"community{i}", "1"]
        predictive = [f"{v:.4f}" for v in rng.random(122)]
        # attribute 3 (racePctWhite) alternates around the 0.5 cut
        predictive[3] = "0.80" if i % 3 else "0.20"
        # inject some missing values
        if i == 5:
            predictive[10] = "?"
        target = f"{rng.random():.4f}"
        lines.append(",".join(identifiers + predictive + [target]))
    path = tmp_path / "communities.data"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestLoadCrime:
    def test_loads(self, crime_data_file):
        data = load_crime(crime_data_file)
        assert data.n_samples == 30
        assert data.name == "crime"

    def test_target_median_split(self, crime_data_file):
        data = load_crime(crime_data_file)
        assert data.y.mean() == pytest.approx(0.5, abs=0.05)

    def test_protected_from_race_pct(self, crime_data_file):
        data = load_crime(crime_data_file)
        assert data.s.sum() == 10  # every third row is majority non-white

    def test_missing_values_imputed(self, crime_data_file):
        data = load_crime(crime_data_file)
        assert np.all(np.isfinite(data.X))

    def test_feature_count(self, crime_data_file):
        data = load_crime(crime_data_file)
        # 122 predictive attributes + appended protected indicator
        assert data.X.shape[1] == 123

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "broken.data"
        path.write_text("1,2,3\n")
        with pytest.raises(DatasetError, match="128 fields"):
            load_crime(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_crime(tmp_path / "missing.data")

    def test_too_few_rows(self, tmp_path):
        path = tmp_path / "short.data"
        row = ",".join(["1"] * 128)
        path.write_text(row + "\n")
        with pytest.raises(DatasetError, match="too few"):
            load_crime(path)
