"""Tests for repro.datasets.ratings — the niche.com-style side information."""

import numpy as np
import pytest

from repro.datasets import rating_equivalence_classes, simulate_star_ratings
from repro.exceptions import DatasetError


@pytest.fixture
def communities(rng):
    violence = rng.normal(size=200)
    protected = rng.integers(0, 2, 200).astype(bool)
    return violence, protected


class TestSimulateRatings:
    def test_shapes(self, communities):
        violence, protected = communities
        ratings, counts = simulate_star_ratings(violence, protected, seed=0)
        assert ratings.shape == (200,)
        assert counts.shape == (200,)

    def test_coverage_fraction(self, communities):
        violence, protected = communities
        ratings, counts = simulate_star_ratings(
            violence, protected, coverage=0.6, seed=0
        )
        observed = ~np.isnan(ratings)
        assert observed.mean() == pytest.approx(0.6, abs=0.12)
        np.testing.assert_array_equal(observed, counts > 0)

    def test_full_coverage(self, communities):
        violence, protected = communities
        ratings, _ = simulate_star_ratings(violence, protected, coverage=1.0, seed=0)
        assert not np.isnan(ratings).any()

    def test_star_range(self, communities):
        violence, protected = communities
        ratings, _ = simulate_star_ratings(violence, protected, seed=0)
        observed = ratings[~np.isnan(ratings)]
        assert observed.min() >= 1.0 and observed.max() <= 5.0

    def test_violence_anticorrelation(self, communities):
        violence, protected = communities
        ratings, _ = simulate_star_ratings(violence, protected, coverage=1.0, seed=1)
        assert np.corrcoef(ratings, violence)[0, 1] < -0.5

    def test_protected_positivity_bias(self, rng):
        violence = rng.normal(size=2000)
        protected = np.arange(2000) % 2 == 0
        ratings, _ = simulate_star_ratings(
            violence, protected, coverage=1.0, protected_bias=0.8, seed=2
        )
        # same violence distribution in both groups by construction
        assert ratings[protected].mean() > ratings[~protected].mean() + 0.2

    def test_deterministic(self, communities):
        violence, protected = communities
        a, _ = simulate_star_ratings(violence, protected, seed=7)
        b, _ = simulate_star_ratings(violence, protected, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_length_mismatch(self, rng):
        with pytest.raises(DatasetError, match="align"):
            simulate_star_ratings(rng.normal(size=5), [True, False])

    def test_bad_coverage(self, communities):
        violence, protected = communities
        with pytest.raises(DatasetError, match="coverage"):
            simulate_star_ratings(violence, protected, coverage=0.0)

    def test_bad_mean_reviews(self, communities):
        violence, protected = communities
        with pytest.raises(DatasetError, match="mean_reviews"):
            simulate_star_ratings(violence, protected, mean_reviews=0)


class TestEquivalenceClasses:
    def test_whole_star_classes(self):
        classes = rating_equivalence_classes([1.2, 1.4, 2.6, np.nan])
        assert classes[0] == classes[1] == 1
        assert classes[2] == 3
        assert classes[3] == -1

    def test_half_star_resolution(self):
        classes = rating_equivalence_classes([1.2, 1.4, 1.6], resolution=0.5)
        assert classes[0] != classes[2]

    def test_all_nan(self):
        classes = rating_equivalence_classes([np.nan, np.nan])
        np.testing.assert_array_equal(classes, [-1, -1])

    def test_invalid_resolution(self):
        with pytest.raises(DatasetError, match="resolution"):
            rating_equivalence_classes([1.0], resolution=0.0)
