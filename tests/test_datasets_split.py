"""Tests for repro.datasets.split — stratified train/test splitting."""

import dataclasses

import numpy as np
import pytest

from repro.datasets import simulate_admissions, train_test_split
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def workload():
    return simulate_admissions(400, seed=21)


def _rates(dataset):
    return float(np.mean(dataset.y)), float(np.mean(dataset.s))


class TestStratifiedSplit:
    def test_sizes_exact_and_disjoint(self, workload):
        n = workload.n_samples
        train, test = train_test_split(workload, test_size=0.25, seed=0)
        assert test.n_samples == round(0.25 * n)
        assert train.n_samples == n - test.n_samples
        # The two sides partition the rows: joint label/group counts add
        # back up to the full workload's.
        for value in (0, 1):
            total = int(np.sum(workload.s == value))
            assert int(np.sum(train.s == value)) + int(
                np.sum(test.s == value)
            ) == total

    def test_joint_composition_preserved(self, workload):
        train, test = train_test_split(
            workload, test_size=0.25, seed=3, stratify_on=("y", "s")
        )
        y_rate, s_rate = _rates(workload)
        for side in (train, test):
            side_y, side_s = _rates(side)
            # Largest-remainder puts every stratum within one row of
            # proportional, so rates match to ~1 row / n_side.
            assert abs(side_y - y_rate) < 0.02
            assert abs(side_s - s_rate) < 0.02

    def test_deterministic_given_seed(self, workload):
        a = train_test_split(workload, seed=7)
        b = train_test_split(workload, seed=7)
        np.testing.assert_array_equal(a[1].X, b[1].X)
        c = train_test_split(workload, seed=8)
        assert not np.array_equal(a[1].X, c[1].X)

    def test_absolute_count(self, workload):
        _, test = train_test_split(workload, test_size=50)
        assert test.n_samples == 50

    def test_plain_split_with_no_strata(self, workload):
        n = workload.n_samples
        train, test = train_test_split(workload, stratify_on=())
        assert test.n_samples == round(0.25 * n)
        assert train.n_samples == n - test.n_samples

    def test_stratify_on_feature_name_and_index(self, workload):
        name = workload.feature_names[0]
        by_name = train_test_split(workload, seed=5, stratify_on=(name,))
        by_index = train_test_split(workload, seed=5, stratify_on=(0,))
        np.testing.assert_array_equal(by_name[1].X, by_index[1].X)

    def test_tiny_strata_stay_in_train(self, workload):
        # A stratum too small to earn a test row contributes nothing to
        # the test side rather than being over-sampled.
        strata_col = workload.X[:, 0]
        rare = np.argsort(strata_col)[:2]
        marker = np.zeros(workload.n_samples)
        marker[rare] = 1.0
        patched = dataclasses.replace(
            workload,
            X=np.column_stack([workload.X, marker]),
            feature_names=tuple(workload.feature_names) + ("rare",),
        )
        _, test = train_test_split(
            patched, test_size=0.05, seed=0, stratify_on=("rare",)
        )
        rare_in_test = int(np.sum(test.X[:, -1]))
        assert rare_in_test == 0


class TestSplitValidation:
    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 0])
    def test_bad_test_size(self, workload, bad):
        with pytest.raises(DatasetError):
            train_test_split(workload, test_size=bad)

    def test_full_size_count_rejected(self, workload):
        with pytest.raises(DatasetError):
            train_test_split(workload, test_size=workload.n_samples)

    def test_unknown_key(self, workload):
        with pytest.raises(DatasetError, match="stratification key"):
            train_test_split(workload, stratify_on=("nope",))

    def test_out_of_range_index(self, workload):
        with pytest.raises(DatasetError, match="out of range"):
            train_test_split(workload, stratify_on=(99,))

    def test_non_key_type(self, workload):
        with pytest.raises(DatasetError, match="keys"):
            train_test_split(workload, stratify_on=(object(),))
