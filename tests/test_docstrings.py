"""Execute the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.core.approx
import repro.core.pfr
import repro.datasets.synthetic
import repro.exceptions


@pytest.mark.parametrize(
    "module",
    [
        repro.core.approx,
        repro.core.pfr,
        repro.datasets.synthetic,
        repro.exceptions,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, raise_on_error=False, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
