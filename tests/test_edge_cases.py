"""Cross-module edge cases and failure injection.

These tests push unusual-but-legal inputs through whole pipelines: tiny
datasets, empty or disconnected fairness graphs, degenerate folds, extreme
hyper-parameters — the situations a downstream user hits first.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import PFR, simulate_admissions
from repro.baselines import IFair, LFR, MaskedRepresentation
from repro.core import KernelPFR
from repro.experiments import ExperimentHarness
from repro.exceptions import ReproError, ValidationError
from repro.graphs import (
    between_group_quantile_graph,
    knn_graph,
    pairwise_judgment_graph,
)
from repro.metrics import consistency
from repro.ml import GridSearchCV, LogisticRegression, StratifiedKFold


class TestTinyInputs:
    def test_pfr_on_minimum_dataset(self):
        X = np.array([[0.0, 1.0], [1.0, 0.0], [0.5, 0.5]])
        WF = pairwise_judgment_graph([(0, 1)], n=3)
        Z = PFR(n_components=1, n_neighbors=1).fit(X, WF).transform(X)
        assert Z.shape == (3, 1)
        assert np.all(np.isfinite(Z))

    def test_harness_on_tiny_dataset(self):
        data = simulate_admissions(25, seed=0)
        harness = ExperimentHarness(data, seed=0, n_components=2, n_neighbors=3)
        result = harness.run_method("pfr", gamma=0.5)
        assert np.isfinite(result.auc)

    def test_knn_two_points(self):
        W = knn_graph(np.array([[0.0], [1.0]]), n_neighbors=1)
        assert W[0, 1] > 0

    def test_logistic_regression_two_samples(self):
        model = LogisticRegression().fit(
            np.array([[0.0], [1.0]]), np.array([0, 1])
        )
        assert model.predict(np.array([[0.0], [1.0]])).tolist() == [0, 1]


class TestDegenerateGraphs:
    def test_pfr_with_fully_disconnected_wx(self, rng):
        # A binary graph over far-apart clusters can have many components.
        X = np.vstack([rng.normal(i * 100, 0.1, size=(5, 2)) for i in range(4)])
        WF = pairwise_judgment_graph([(0, 5), (10, 15)], n=20)
        Z = PFR(n_components=2, n_neighbors=2).fit(X, WF).transform(X)
        assert np.all(np.isfinite(Z))

    def test_consistency_on_isolated_nodes_only(self):
        assert consistency([0, 1, 1], sp.csr_matrix((3, 3))) == 1.0

    def test_quantile_graph_with_all_identical_scores(self):
        scores = np.ones(20)
        groups = np.repeat([0, 1], 10)
        W = between_group_quantile_graph(scores, groups, n_quantiles=4)
        # everyone in the same quantile -> complete bipartite graph
        assert W.nnz == 2 * 10 * 10

    def test_kernel_pfr_duplicate_points(self, rng):
        X = np.repeat(rng.normal(size=(5, 2)), 4, axis=0)
        WF = pairwise_judgment_graph([(0, 4)], n=20)
        model = KernelPFR(n_components=2, n_neighbors=3).fit(X, WF)
        assert np.all(np.isfinite(model.transform(X)))


class TestDegenerateLabels:
    def test_grid_search_with_rare_class(self):
        # 3-fold stratified CV with a class of exactly 3 members works.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = np.zeros(60, dtype=int)
        y[:3] = 1
        X[:3] += 5.0
        search = GridSearchCV(
            LogisticRegression(),
            {"C": [1.0]},
            cv=StratifiedKFold(n_splits=3),
            scoring="accuracy",
        ).fit(X, y)
        assert search.best_score_ > 0.9

    def test_lfr_with_heavily_imbalanced_labels(self, rng):
        X = rng.normal(size=(80, 3))
        y = np.zeros(80, dtype=int)
        y[:8] = 1
        s = np.arange(80) % 2
        model = LFR(n_prototypes=4, max_iter=30, seed=0).fit(X, y, s=s)
        assert np.all(np.isfinite(model.transform(X)))


class TestExtremeHyperParameters:
    def test_pfr_gamma_endpoints(self, rng):
        X = rng.normal(size=(30, 4))
        WF = pairwise_judgment_graph([(0, 1)], n=30)
        for gamma in (0.0, 1.0):
            Z = PFR(n_components=2, gamma=gamma, n_neighbors=3).fit(X, WF).transform(X)
            assert np.all(np.isfinite(Z))

    def test_ifair_single_prototype(self, rng):
        X = rng.normal(size=(25, 3))
        model = IFair(n_prototypes=1, max_iter=20, seed=0).fit(X)
        Z = model.transform(X)
        # one prototype => every row maps to it exactly
        assert np.allclose(Z, Z[0], atol=1e-8)

    def test_logistic_regression_extreme_regularization(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression(C=1e-10).fit(X, y)
        assert np.linalg.norm(model.coef_) < 1e-3

    def test_masker_then_pfr_composition(self, rng):
        X = np.column_stack([rng.normal(size=(30, 3)), np.arange(30) % 2])
        masked = MaskedRepresentation(protected_columns=[3]).fit_transform(X)
        WF = pairwise_judgment_graph([(0, 1)], n=30)
        Z = PFR(n_components=2, n_neighbors=3).fit(masked, WF).transform(masked)
        assert Z.shape == (30, 2)


class TestErrorHierarchy:
    def test_all_library_errors_are_catchable_as_repro_error(self, rng):
        with pytest.raises(ReproError):
            PFR(gamma=7.0).fit(rng.normal(size=(5, 2)), sp.csr_matrix((5, 5)))
        with pytest.raises(ReproError):
            knn_graph(rng.normal(size=(5, 2)), n_neighbors=9)
        with pytest.raises(ReproError):
            LogisticRegression(C=-1.0).fit(rng.normal(size=(4, 2)), [0, 1, 0, 1])

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


class TestHarnessRobustness:
    def test_two_harnesses_do_not_share_state(self):
        data = simulate_admissions(40, seed=0)
        a = ExperimentHarness(data, seed=1, n_components=2).prepare()
        b = ExperimentHarness(data, seed=2, n_components=2).prepare()
        assert not np.array_equal(a.train_idx, b.train_idx)

    def test_method_overrides_reach_the_estimator(self):
        data = simulate_admissions(60, seed=0)
        harness = ExperimentHarness(
            data,
            seed=0,
            n_components=2,
            method_overrides={"lfr": {"max_iter": 1, "n_prototypes": 3}},
        )
        result = harness.run_method("lfr")
        assert np.isfinite(result.auc)

    def test_explicit_params_beat_overrides(self):
        data = simulate_admissions(60, seed=0)
        harness = ExperimentHarness(
            data,
            seed=0,
            n_components=2,
            method_overrides={"ifair": {"max_iter": 200}},
        )
        # call-site max_iter must win; smoke-check it runs quickly/finitely
        result = harness.run_method("ifair", max_iter=2, n_prototypes=3)
        assert np.isfinite(result.auc)
