"""Tests for repro.experiments.builders — the public WF constructors."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    build_fairness_graph,
    build_fit_plan,
    fairness_side_scores,
)
from repro.graphs import edge_count


class TestFairnessSideScores:
    def test_passthrough_for_datasets_with_side_info(self, small_compas):
        scores = fairness_side_scores(small_compas)
        np.testing.assert_array_equal(scores, small_compas.side_information)

    def test_synthetic_scores_derived(self, small_admissions):
        scores = fairness_side_scores(small_admissions)
        assert scores.shape == (small_admissions.n_samples,)
        assert scores.min() >= 0.0 and scores.max() <= 1.0

    def test_synthetic_scores_rank_candidates_sensibly(self, small_admissions):
        # Higher GPA+SAT within a group must mean a (weakly) higher score.
        scores = fairness_side_scores(small_admissions)
        data = small_admissions
        for g in (0, 1):
            members = data.s == g
            total = data.X[members, 0] + data.X[members, 1]
            correlation = np.corrcoef(total, scores[members])[0, 1]
            assert correlation > 0.8

    def test_train_indices_limit_label_exposure(self, small_admissions):
        train = np.arange(0, small_admissions.n_samples, 2)
        scores = fairness_side_scores(small_admissions, train_indices=train)
        assert np.all(np.isfinite(scores))

    def test_tiny_group_rejected(self, small_admissions):
        with pytest.raises(ValidationError, match="fewer than 2"):
            only_one_per_group = np.array(
                [
                    np.flatnonzero(small_admissions.s == 0)[0],
                    np.flatnonzero(small_admissions.s == 1)[0],
                    np.flatnonzero(small_admissions.s == 0)[1],
                ]
            )[:2]
            fairness_side_scores(
                small_admissions, train_indices=only_one_per_group
            )


class TestBuildFairnessGraph:
    def test_synthetic_quantile_graph(self, small_admissions):
        W = build_fairness_graph(small_admissions, n_quantiles=5)
        rows, cols = W.nonzero()
        assert np.all(small_admissions.s[rows] != small_admissions.s[cols])

    def test_compas_quantile_graph(self, small_compas):
        W = build_fairness_graph(small_compas)
        assert W.shape == (small_compas.n_samples,) * 2
        assert edge_count(W) > 0

    def test_crime_equivalence_graph(self, small_crime):
        W = build_fairness_graph(small_crime)
        # unreviewed communities are isolated
        unreviewed = np.flatnonzero(np.isnan(small_crime.side_information))
        degrees = np.asarray(W.sum(axis=1)).ravel()
        assert np.all(degrees[unreviewed] == 0)

    def test_crime_edges_are_within_rating_class(self, small_crime):
        from repro.datasets import rating_equivalence_classes

        W = build_fairness_graph(small_crime, rating_resolution=1.0)
        classes = rating_equivalence_classes(small_crime.side_information)
        rows, cols = W.nonzero()
        np.testing.assert_array_equal(classes[rows], classes[cols])

    def test_precomputed_scores_respected(self, small_compas):
        constant = np.ones(small_compas.n_samples)
        W = build_fairness_graph(small_compas, scores=constant)
        # all-equal scores put everyone in one quantile: complete bipartite
        sizes = small_compas.group_sizes()
        assert edge_count(W) == sizes[0] * sizes[1]

    def test_matches_harness_graph(self, small_admissions):
        from repro.experiments import ExperimentHarness

        harness = ExperimentHarness(small_admissions, seed=0).prepare()
        W = build_fairness_graph(
            small_admissions, train_indices=harness.train_idx
        )
        assert (W != harness.W_fair_full).nnz == 0


class TestBuildFitPlan:
    def test_default_plan_solves_sweep_points(self, small_admissions):
        plan = build_fit_plan(small_admissions)
        evals, V = plan.solve(0.9, 2)
        assert V.shape == (small_admissions.n_features, 2)
        assert np.all(np.diff(evals) >= -1e-12)
        # Default template excludes the protected columns from the k-NN
        # distances, matching the paper's WX definition (§3.1).
        assert plan.exclude_columns == list(
            small_admissions.protected_columns
        )

    def test_matches_direct_pfr_fit(self, small_admissions):
        from repro.core import PFR

        template = PFR(
            n_components=2,
            gamma=0.7,
            exclude_columns=list(small_admissions.protected_columns),
        )
        plan = build_fit_plan(small_admissions, estimator=template)
        from repro.ml.base import clone

        planned = plan.fit(clone(template))
        solo = clone(template).fit(
            small_admissions.X, build_fairness_graph(small_admissions)
        )
        np.testing.assert_allclose(
            planned.components_, solo.components_, atol=1e-8
        )
