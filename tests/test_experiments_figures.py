"""Tests for repro.experiments.figures — every figure driver at small scale.

These are integration tests: each driver must run end-to-end, return the
series the paper plots, and render. The *qualitative shape* assertions that
constitute the actual reproduction check live in test_paper_claims.py.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    EXPERIMENTS,
    FigureResult,
    figure1,
    figure2,
    figure3,
    figure4,
    get_experiment,
    table1,
)
from repro.experiments.builders import _scaled


class TestTable1:
    def test_rows_and_render(self):
        result = table1(scale=0.05, seed=0)
        assert isinstance(result, FigureResult)
        assert len(result.data["rows"]) == 3
        assert "Base-rate" in result.render()

    def test_full_scale_counts(self):
        result = table1(scale=1.0, seed=0)
        by_name = {row[0]: row for row in result.data["rows"]}
        assert by_name["synthetic"][1] == 600
        assert by_name["crime"][1] == 1993
        assert by_name["compas"][1] == 8803


class TestFigure1:
    def test_representations_and_geometry(self):
        result = figure1(scale=0.3, seed=0)
        for method in ("original", "ifair", "lfr", "pfr"):
            assert result.data["representations"][method].shape[1] == 2
            geometry = result.data["geometry"][method]
            assert np.isfinite(geometry["cross_group_distance"])
        assert "[pfr]" in result.render()


class TestBarFigures:
    def test_figure2_results_complete(self):
        result = figure2(scale=0.25, seed=0)
        assert set(result.data["results"]) == {"original", "ifair", "lfr", "pfr"}
        assert "Consistency(WF)" in result.text

    def test_figure3_includes_hardt(self):
        result = figure3(scale=0.25, seed=0)
        assert "hardt" in result.data["results"]
        assert "FPR" in result.text


class TestSweepFigures:
    def test_figure4_series(self):
        result = figure4(scale=0.25, seed=0, gammas=(0.0, 0.5, 1.0))
        series = result.data["series"]
        assert len(series["consistency_wf"]) == 3
        assert len(series["auc_s1"]) == 3
        assert "gamma" in result.text


class TestScaling:
    def test_scaled_bounds(self):
        assert _scaled(1000, 0.5) == 500
        assert _scaled(100, 0.01) == 20  # floor of 20

    def test_invalid_scale(self):
        with pytest.raises(ValidationError, match="scale"):
            table1(scale=0.0)

    def test_unknown_dataset(self):
        from repro.experiments import make_workload

        with pytest.raises(ValidationError, match="unknown dataset"):
            make_workload("mnist", seed=0, scale=1.0)


class TestRegistry:
    def test_all_eleven_experiments_present(self):
        expected = {"table1"} | {f"figure{i}" for i in range(1, 11)}
        assert set(EXPERIMENTS) == expected

    def test_every_spec_complete(self):
        for spec in EXPERIMENTS.values():
            assert spec.title
            assert spec.dataset in ("all", "synthetic", "crime", "compas")
            assert callable(spec.driver)
            assert spec.expected_shapes
            assert spec.bench_module.startswith("benchmarks/")

    def test_get_experiment(self):
        assert get_experiment("figure2").dataset == "synthetic"

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("figure99")

    def test_drivers_match_registry(self):
        import repro.experiments.figures as figures

        for name, spec in EXPERIMENTS.items():
            assert spec.driver is getattr(figures, name)
