"""Tests for repro.experiments.harness — the paper's protocol."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import ExperimentHarness, within_group_ranking_scores
from repro.metrics import restrict_graph


@pytest.fixture
def harness(small_admissions):
    return ExperimentHarness(small_admissions, seed=0, n_components=2).prepare()


class TestPreparation:
    def test_split_is_partition(self, harness, small_admissions):
        joined = np.sort(np.concatenate([harness.train_idx, harness.test_idx]))
        np.testing.assert_array_equal(joined, np.arange(small_admissions.n_samples))

    def test_split_stratified(self, harness):
        train_rate = harness.y_train.mean()
        test_rate = harness.y_test.mean()
        assert abs(train_rate - test_rate) < 0.1

    def test_scaler_fit_on_train_only(self, harness, small_admissions):
        train_scaled = harness.X_train
        np.testing.assert_allclose(train_scaled.mean(axis=0), 0.0, atol=1e-10)

    def test_fairness_graph_covers_population(self, harness, small_admissions):
        assert harness.W_fair_full.shape == (
            small_admissions.n_samples,
            small_admissions.n_samples,
        )

    def test_train_graph_is_restriction(self, harness):
        expected = restrict_graph(harness.W_fair_full, harness.train_idx)
        assert (harness.W_fair_train != expected).nnz == 0

    def test_prepare_idempotent(self, harness):
        train_before = harness.train_idx.copy()
        harness.prepare()
        np.testing.assert_array_equal(harness.train_idx, train_before)

    def test_quantile_graph_cross_group_only(self, harness, small_admissions):
        rows, cols = harness.W_fair_full.nonzero()
        s = small_admissions.s
        assert np.all(s[rows] != s[cols])


class TestRunMethod:
    @pytest.mark.parametrize("method", ["original", "pfr", "original+"])
    def test_fast_methods_produce_valid_results(self, harness, method):
        result = harness.run_method(method, gamma=0.8)
        assert 0.0 <= result.auc <= 1.0
        assert 0.0 <= result.consistency_wx <= 1.0
        assert 0.0 <= result.consistency_wf <= 1.0
        assert result.method == method

    def test_ifair_and_lfr_run(self, harness):
        for method in ("ifair", "lfr"):
            result = harness.run_method(method, max_iter=5, n_prototypes=3)
            assert np.isfinite(result.auc)

    def test_hardt_runs(self, harness):
        result = harness.run_method("hardt")
        assert "expected_error" in result.extras
        assert 0.0 <= result.auc <= 1.0

    def test_kernel_pfr_runs(self, harness):
        result = harness.run_method("kpfr", gamma=0.8)
        assert np.isfinite(result.auc)
        assert result.method == "kpfr"

    def test_unknown_method(self, harness):
        with pytest.raises(ValidationError, match="unknown method"):
            harness.run_method("mystery")

    def test_summary_keys(self, harness):
        summary = harness.run_method("original").summary()
        assert set(summary) >= {
            "method",
            "auc",
            "consistency_wx",
            "consistency_wf",
            "parity_gap",
            "fpr_gap",
            "fnr_gap",
        }

    def test_run_methods_batch(self, harness):
        results = harness.run_methods(["original", "pfr"], gamma=0.5)
        assert set(results) == {"original", "pfr"}

    def test_deterministic(self, small_admissions):
        a = ExperimentHarness(small_admissions, seed=3, n_components=2)
        b = ExperimentHarness(small_admissions, seed=3, n_components=2)
        assert a.run_method("pfr").auc == b.run_method("pfr").auc


class TestGammaSweep:
    def test_sweep_length(self, harness):
        sweep = harness.gamma_sweep([0.0, 0.5, 1.0])
        assert len(sweep) == 3

    def test_synthetic_sweep_shapes(self, admissions):
        # The paper's Figure 4 claims on the full-size synthetic dataset.
        harness = ExperimentHarness(admissions, seed=0, n_components=2)
        sweep = harness.gamma_sweep([0.0, 0.9])
        assert sweep[1].consistency_wf > sweep[0].consistency_wf
        assert sweep[1].auc > sweep[0].auc

    def test_plan_reuse_matches_fresh_harness(self, small_admissions):
        # The sweep reuses one cached SpectralFitPlan across γ points; the
        # results must be indistinguishable from refitting on a fresh
        # harness at each γ.
        warm = ExperimentHarness(small_admissions, seed=3, n_components=2)
        sweep = warm.gamma_sweep([0.2, 0.8], method="pfr")
        assert len(warm._plan_cache) == 1  # one structural config, shared
        for gamma, result in zip([0.2, 0.8], sweep):
            fresh = ExperimentHarness(small_admissions, seed=3, n_components=2)
            assert fresh.run_method("pfr", gamma=gamma).auc == result.auc


class TestTune:
    def test_grid_search_returns_best(self, harness):
        out = harness.tune(
            "pfr", {"gamma": [0.1, 0.9], "C": [1.0]}, n_splits=3
        )
        assert out["best_params"]["gamma"] in (0.1, 0.9)
        assert len(out["results"]) == 2
        assert out["best_score"] >= max(
            r["mean_score"] for r in out["results"]
        ) - 1e-12

    def test_tune_original(self, harness):
        out = harness.tune("original", {"C": [0.1, 10.0]}, n_splits=3)
        assert "C" in out["best_params"]

    def test_tune_rejects_hardt(self, harness):
        with pytest.raises(ValidationError, match="does not support"):
            harness.tune("hardt", {"C": [1.0]})


class TestRankingScores:
    def test_scores_in_unit_interval(self, binary_problem):
        X, y = binary_problem
        s = np.arange(len(y)) % 2
        scores = within_group_ranking_scores(X, y, s)
        assert scores.min() >= 0.0 and scores.max() <= 1.0

    def test_rankings_are_within_group(self, rng):
        # Shifting one group's features must not change the other group's
        # scores at all.
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 2, 60)
        y[:4] = [0, 1, 0, 1]
        s = np.repeat([0, 1], 30)
        base = within_group_ranking_scores(X, y, s)
        X_shifted = X.copy()
        X_shifted[s == 1] += 100.0
        shifted = within_group_ranking_scores(X_shifted, y, s)
        np.testing.assert_allclose(base[s == 0], shifted[s == 0])


class TestLandmarkHarness:
    """The harness's landmark-Nyström switch (landmarks=...)."""

    @pytest.fixture(scope="class")
    def landmark_harness(self):
        from repro.datasets import simulate_blobs

        data = simulate_blobs(300, n_features=5, seed=4)
        return ExperimentHarness(data, landmarks=60, seed=0)

    def test_pfr_runs_with_landmarks(self, landmark_harness):
        result = landmark_harness.run_method("pfr", gamma=0.5)
        assert 0.0 <= result.auc <= 1.0
        assert result.dataset == "blobs"

    def test_kpfr_runs_with_landmarks(self, landmark_harness):
        result = landmark_harness.run_method("kpfr", gamma=0.5)
        assert 0.0 <= result.auc <= 1.0

    def test_gamma_sweep_reuses_landmark_plan(self, landmark_harness):
        results = landmark_harness.gamma_sweep([0.0, 1.0], method="pfr")
        assert len(results) == 2
        # One landmark plan per structural configuration in the cache.
        landmark_keys = [
            key
            for key in landmark_harness._plan_cache
            if key[0] == "pfr" and key[3] == "nystrom"
        ]
        assert len(landmark_keys) == 1

    def test_landmarks_clamp_to_training_size(self):
        from repro.datasets import simulate_blobs

        data = simulate_blobs(80, n_features=4, seed=1)
        harness = ExperimentHarness(data, landmarks=10_000, seed=0)
        result = harness.run_method("pfr", gamma=0.5)
        assert 0.0 <= result.auc <= 1.0

    def test_tune_with_landmarks(self, landmark_harness):
        out = landmark_harness.tune(
            "pfr", {"gamma": [0.0, 1.0]}, n_splits=2
        )
        assert "gamma" in out["best_params"]


class TestBuildFitPlanLandmarks:
    def test_landmark_plan_dispatch(self):
        from repro.core import LandmarkPlan, SpectralFitPlan
        from repro.datasets import simulate_blobs
        from repro.experiments.builders import build_fit_plan

        data = simulate_blobs(200, n_features=4, seed=2)
        exact = build_fit_plan(data)
        assert isinstance(exact, SpectralFitPlan)
        landmark = build_fit_plan(data, landmarks=50)
        assert isinstance(landmark, LandmarkPlan)
        eigenvalues, V = landmark.solve(0.5, 2)
        assert eigenvalues.shape == (2,) and V.shape[1] == 2
