"""Tests for repro.experiments.parallel — executor + serial/process parity.

The contract under test: parallelism may change wall-clock only, never
numbers. Every parity test runs the same workload through the serial
reference path (``workers=1`` / ``workers=None``) and through a process
fan-out (``workers=4``) and requires **bitwise-identical** results — equal
floats, not allclose.
"""

import numpy as np
import pytest

from repro.datasets import simulate_admissions
from repro.exceptions import ValidationError
from repro.experiments import (
    Executor,
    ExperimentHarness,
    WorkloadFactory,
    available_workers,
    get_executor,
    make_workload,
    repeat_gamma_sweep,
    repeat_method,
    repeat_methods,
    spawn_seeds,
    tune_methods,
)


# Module-level task functions: the process backend pickles them by
# reference, so they cannot be lambdas or closures.

def _square_plus_state(state, task):
    return state + task * task


def _echo(state, task):
    return task


def _boom(state, task):
    raise RuntimeError(f"task {task} exploded")


PROCESS_4 = Executor(backend="process", workers=4)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(0, 4) == spawn_seeds(0, 4)
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)

    def test_distinct_within_and_across_roots(self):
        seeds = spawn_seeds(0, 16)
        assert len(set(seeds)) == 16
        assert spawn_seeds(0, 4) != spawn_seeds(1, 4)

    def test_prefix_stable(self):
        # Growing n extends the seed list; it must not reshuffle the prefix.
        assert spawn_seeds(3, 8)[:4] == spawn_seeds(3, 4)

    def test_zero_and_negative(self):
        assert spawn_seeds(0, 0) == ()
        with pytest.raises(ValidationError, match="spawn"):
            spawn_seeds(0, -1)


class TestExecutor:
    def test_available_workers_positive(self):
        assert available_workers() >= 1

    def test_get_executor_interpretation(self):
        assert get_executor(None).backend == "serial"
        executor = Executor(backend="process", workers=2)
        assert get_executor(executor) is executor
        assert get_executor(4).workers == 4
        assert get_executor("auto").workers == "auto"

    def test_invalid_backend_and_workers(self):
        with pytest.raises(ValidationError, match="backend"):
            Executor(backend="threads")
        with pytest.raises(ValidationError, match="workers"):
            Executor(workers=0)
        with pytest.raises(ValidationError, match="workers"):
            Executor(workers="many")
        with pytest.raises(ValidationError, match="workers"):
            get_executor("many")

    def test_resolution(self):
        executor = Executor(backend="auto", workers=4)
        assert executor.resolve_workers(2) == 2  # capped by task count
        assert executor.resolve_workers(100) == 4
        assert executor.resolve_backend(1) == "serial"  # degenerate fan-out
        assert Executor(backend="serial", workers=4).resolve_backend(10) == "serial"
        assert Executor(backend="process", workers=4).resolve_backend(10) == "process"

    def test_serial_map_order_and_state(self):
        out = Executor(backend="serial").map(
            _square_plus_state, [1, 2, 3], state=10
        )
        assert out == [11, 14, 19]

    def test_process_map_order_and_state(self):
        tasks = list(range(12))
        out = PROCESS_4.map(_square_plus_state, tasks, state=100)
        assert out == [100 + t * t for t in tasks]

    def test_empty_tasks(self):
        assert PROCESS_4.map(_echo, []) == []

    def test_single_task_stays_serial(self):
        # resolve_backend("auto") must not spin up a pool for one task.
        assert Executor(backend="auto", workers=4).resolve_backend(1) == "serial"
        assert Executor(backend="auto", workers=4).map(_echo, [5]) == [5]

    def test_process_map_propagates_errors(self):
        with pytest.raises(RuntimeError, match="exploded"):
            PROCESS_4.map(_boom, [1, 2])


def _summaries(results) -> list:
    return [result.summary() for result in results]


@pytest.fixture(scope="module")
def parity_harness():
    """Small prepared harness shared by the parity tests (read-only use)."""
    return ExperimentHarness(
        simulate_admissions(60, seed=3), seed=0, n_components=2
    ).prepare()


class TestParity:
    """workers=1 and workers=4 must produce bitwise-identical science."""

    def test_run_methods_pfr_ifair(self, parity_harness):
        methods = ("pfr", "ifair")
        serial = parity_harness.run_methods(methods, gamma=0.9, workers=1)
        fanned = parity_harness.run_methods(methods, gamma=0.9, workers=PROCESS_4)
        for method in methods:
            assert serial[method].summary() == fanned[method].summary()
            assert serial[method].auc == fanned[method].auc
            assert serial[method].auc_by_group == fanned[method].auc_by_group
            assert serial[method].rates == fanned[method].rates

    def test_gamma_sweep_pfr(self, parity_harness):
        gammas = [0.0, 0.3, 0.6, 0.9]
        serial = parity_harness.gamma_sweep(gammas, method="pfr", workers=1)
        fanned = parity_harness.gamma_sweep(gammas, method="pfr", workers=PROCESS_4)
        assert _summaries(serial) == _summaries(fanned)

    def test_gamma_sweep_kernel_pfr_landmark_path(self):
        # The Nyström scaling path: landmark selection is seeded, so it too
        # must be a pure function of the harness seed, not of which worker
        # runs the point.
        harness = ExperimentHarness(
            simulate_admissions(80, seed=5),
            seed=1,
            n_components=2,
            landmarks=24,
            landmark_strategy="uniform",
        )
        gammas = [0.2, 0.8]
        serial = harness.gamma_sweep(gammas, method="kpfr", workers=None)
        fanned = harness.gamma_sweep(gammas, method="kpfr", workers=PROCESS_4)
        assert _summaries(serial) == _summaries(fanned)

    def test_tuned_operating_points_pfr(self, parity_harness):
        grid = {"gamma": [0.1, 0.9], "C": [0.1, 1.0]}
        serial = parity_harness.tune("pfr", grid, n_splits=3, workers=1)
        fanned = parity_harness.tune("pfr", grid, n_splits=3, workers=PROCESS_4)
        # Full equality: best point, best score, and every grid result.
        assert serial == fanned

    def test_tune_methods_ifair(self, parity_harness):
        grids = {"ifair": {"n_prototypes": [3, 5], "C": [1.0]}}
        serial = tune_methods(
            parity_harness, methods=("ifair",), grids=grids, n_splits=3,
            workers=None,
        )
        fanned = tune_methods(
            parity_harness, methods=("ifair",), grids=grids, n_splits=3,
            workers=PROCESS_4,
        )
        assert serial == fanned

    def test_repeat_methods_aggregates(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        kwargs = dict(
            seeds=(0, 1), gamma=0.9, harness_kwargs={"n_components": 2}
        )
        serial = repeat_methods(factory, ("original", "pfr"), **kwargs)
        fanned = repeat_methods(
            factory, ("original", "pfr"), workers=PROCESS_4, **kwargs
        )
        # AggregateResult is a frozen dataclass: == compares every mean/std
        # float exactly.
        assert serial == fanned

    def test_repeat_gamma_sweep_aggregates(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        kwargs = dict(seeds=(0, 1), harness_kwargs={"n_components": 2})
        serial = repeat_gamma_sweep(factory, [0.1, 0.9], **kwargs)
        fanned = repeat_gamma_sweep(
            factory, [0.1, 0.9], workers=PROCESS_4, **kwargs
        )
        assert serial == fanned

    def test_pickled_harness_drops_plan_caches(self, parity_harness):
        import pickle

        parity_harness.run_method("pfr", gamma=0.5)
        assert parity_harness._plan_cache
        clone = pickle.loads(pickle.dumps(parity_harness))
        assert clone._plan_cache == {}
        assert clone._tune_plan_cache == {}
        # The clone still reproduces the parent's numbers from scratch.
        assert (
            clone.run_method("pfr", gamma=0.5).summary()
            == parity_harness.run_method("pfr", gamma=0.5).summary()
        )


class TestRepetitionSeeds:
    def test_empty_seeds_rejected_with_clear_message(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        with pytest.raises(ValidationError, match="two seeds"):
            repeat_method(factory, "original", seeds=())
        with pytest.raises(ValidationError, match="two seeds"):
            repeat_methods(factory, ("original",), seeds=[])
        with pytest.raises(ValidationError, match="two seeds"):
            repeat_gamma_sweep(factory, [0.5], seeds=())

    def test_single_seed_rejected(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        with pytest.raises(ValidationError, match="two seeds"):
            repeat_method(factory, "original", seeds=(0,))
        with pytest.raises(ValidationError, match="two seeds"):
            repeat_method(factory, "original", seeds=1)

    def test_int_seeds_derive_via_seed_sequence(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        aggregate = repeat_method(
            factory, "original", seeds=2,
            harness_kwargs={"n_components": 2},
        )
        assert aggregate.n_runs == 2
        explicit = repeat_method(
            factory, "original", seeds=spawn_seeds(0, 2),
            harness_kwargs={"n_components": 2},
        )
        assert aggregate == explicit

    def test_generator_seeds_materialized(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        aggregate = repeat_method(
            factory, "original", seeds=(s for s in (0, 1)),
            harness_kwargs={"n_components": 2},
        )
        assert aggregate.n_runs == 2


class TestSampleStd:
    def test_repetition_uses_sample_std(self):
        factory = WorkloadFactory("synthetic", scale=0.2)
        seeds = (0, 1, 2)
        aggregate = repeat_method(
            factory, "original", seeds=seeds,
            harness_kwargs={"n_components": 2},
        )
        aucs = [
            ExperimentHarness(factory(seed), seed=seed, n_components=2)
            .run_method("original")
            .summary()["auc"]
            for seed in seeds
        ]
        assert aggregate.mean["auc"] == float(np.mean(aucs))
        assert aggregate.std["auc"] == float(np.std(aucs, ddof=1))
        assert aggregate.std["auc"] != float(np.std(aucs))


class TestWorkloads:
    def test_make_workload_names_and_scale(self):
        data = make_workload("synthetic", seed=0, scale=0.2)
        assert data.name == "synthetic"
        # simulate_admissions draws per group: 0.2 × 300 = 60 each.
        assert data.n_samples == 120
        with pytest.raises(ValidationError, match="unknown dataset"):
            make_workload("adult")
        with pytest.raises(ValidationError, match="scale"):
            make_workload("synthetic", scale=0.0)

    def test_factory_is_picklable_and_deterministic(self):
        import pickle

        factory = WorkloadFactory("crime", scale=0.1)
        clone = pickle.loads(pickle.dumps(factory))
        a, b = factory(7), clone(7)
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)
        with pytest.raises(ValidationError, match="unknown dataset"):
            WorkloadFactory("adult")

    def test_factory_matches_make_workload(self):
        a = WorkloadFactory("synthetic", scale=0.5)(3)
        b = make_workload("synthetic", seed=3, scale=0.5)
        np.testing.assert_array_equal(a.X, b.X)
