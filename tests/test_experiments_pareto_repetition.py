"""Tests for repro.experiments.pareto and repro.experiments.repetition."""

import numpy as np
import pytest

from repro.datasets import simulate_admissions
from repro.exceptions import ValidationError
from repro.experiments import (
    AggregateResult,
    ExperimentHarness,
    pareto_front,
    repeat_method,
    repeat_methods,
    tradeoff_frontier,
)


class TestParetoFront:
    def test_simple_dominance(self):
        points = [(1.0, 1.0), (0.5, 0.5), (1.0, 0.2), (0.2, 1.0)]
        assert pareto_front(points) == [0]

    def test_incomparable_points_all_kept(self):
        points = [(1.0, 0.0), (0.5, 0.5), (0.0, 1.0)]
        assert pareto_front(points) == [0, 1, 2]

    def test_minimize_direction(self):
        points = [(1.0, 5.0), (2.0, 1.0)]
        # maximize first, minimize second: (2, 1) dominates (1, 5)
        assert pareto_front(points, maximize=(True, False)) == [1]
        # minimize both: incomparable — each wins one objective
        assert pareto_front(points, maximize=(False, False)) == [0, 1]

    def test_duplicates_kept(self):
        points = [(1.0, 1.0), (1.0, 1.0)]
        assert pareto_front(points) == [0, 1]

    def test_three_objectives(self):
        points = [(1, 1, 1), (1, 1, 0), (0, 2, 1)]
        assert pareto_front(points, maximize=(True, True, True)) == [0, 2]

    def test_direction_count_checked(self):
        with pytest.raises(ValidationError, match="directions"):
            pareto_front([(1.0, 2.0)], maximize=(True,))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="NaN"):
            pareto_front([(float("nan"), 1.0)])


class TestTradeoffFrontier:
    def test_frontier_subset_and_sorted(self, small_admissions):
        harness = ExperimentHarness(small_admissions, seed=0, n_components=2)
        out = tradeoff_frontier(
            harness, "pfr", grid={"gamma": [0.0, 0.5, 1.0]}
        )
        assert len(out["results"]) == 3
        assert 1 <= len(out["frontier"]) <= 3
        aucs = [r.auc for _, r in out["frontier"]]
        assert aucs == sorted(aucs)

    def test_frontier_points_not_dominated(self, small_admissions):
        harness = ExperimentHarness(small_admissions, seed=0, n_components=2)
        out = tradeoff_frontier(harness, "pfr", grid={"gamma": [0.0, 1.0]})
        for _, candidate in out["frontier"]:
            for _, other in out["results"]:
                strictly_better = (
                    other.auc > candidate.auc
                    and other.consistency_wf > candidate.consistency_wf
                )
                assert not strictly_better

    def test_unknown_objective(self, small_admissions):
        harness = ExperimentHarness(small_admissions, seed=0, n_components=2)
        with pytest.raises(ValidationError, match="objective"):
            tradeoff_frontier(harness, "pfr", objectives=("auc", "magic"))


class TestRepetition:
    def test_aggregates_across_seeds(self):
        aggregate = repeat_method(
            lambda seed: simulate_admissions(60, seed=seed),
            "pfr",
            seeds=(0, 1, 2),
            gamma=0.9,
            harness_kwargs={"n_components": 2},
        )
        assert isinstance(aggregate, AggregateResult)
        assert aggregate.n_runs == 3
        assert 0.0 <= aggregate.mean["auc"] <= 1.0
        assert aggregate.std["auc"] >= 0.0

    def test_format(self):
        aggregate = repeat_method(
            lambda seed: simulate_admissions(50, seed=seed),
            "original",
            seeds=(0, 1),
            harness_kwargs={"n_components": 2},
        )
        text = aggregate.format("auc")
        assert "±" in text
        with pytest.raises(ValidationError, match="unknown metric"):
            aggregate.format("magic")

    def test_repeat_gamma_sweep(self):
        from repro.experiments import repeat_gamma_sweep

        out = repeat_gamma_sweep(
            lambda seed: simulate_admissions(60, seed=seed),
            [0.1, 0.9],
            seeds=(0, 1),
            harness_kwargs={"n_components": 2},
        )
        assert list(out) == [0.1, 0.9]
        assert all(a.n_runs == 2 for a in out.values())
        # Per-γ aggregates must match sweeping each γ independently.
        solo = repeat_method(
            lambda seed: simulate_admissions(60, seed=seed),
            "pfr",
            seeds=(0, 1),
            gamma=0.9,
            harness_kwargs={"n_components": 2},
        )
        assert out[0.9].mean["auc"] == solo.mean["auc"]

    def test_repeat_gamma_sweep_validation(self):
        from repro.experiments import repeat_gamma_sweep

        with pytest.raises(ValidationError, match="two seeds"):
            repeat_gamma_sweep(
                lambda seed: simulate_admissions(40, seed=seed),
                [0.5],
                seeds=(0,),
            )
        with pytest.raises(ValidationError, match="gamma"):
            repeat_gamma_sweep(
                lambda seed: simulate_admissions(40, seed=seed),
                [],
                seeds=(0, 1),
            )
        with pytest.raises(ValidationError, match="duplicates"):
            repeat_gamma_sweep(
                lambda seed: simulate_admissions(40, seed=seed),
                [0.5, 0.5],
                seeds=(0, 1),
            )

    def test_repeat_methods_shares_datasets(self):
        out = repeat_methods(
            lambda seed: simulate_admissions(50, seed=seed),
            ("original", "pfr"),
            seeds=(0, 1),
            gamma=0.9,
            harness_kwargs={"n_components": 2},
        )
        assert set(out) == {"original", "pfr"}
        assert all(a.n_runs == 2 for a in out.values())

    def test_requires_multiple_seeds(self):
        with pytest.raises(ValidationError, match="two seeds"):
            repeat_method(
                lambda seed: simulate_admissions(40, seed=seed),
                "original",
                seeds=(0,),
            )
