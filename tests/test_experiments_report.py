"""Tests for repro.experiments.report — ASCII rendering."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    render_bars,
    render_decision_field,
    render_grouped_bars,
    render_scatter,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_contains_headers_and_values(self):
        out = render_table(["name", "value"], [["pfr", 0.93], ["lfr", 0.7]])
        assert "name" in out and "pfr" in out and "0.930" in out

    def test_alignment_rule_line(self):
        out = render_table(["a"], [["x"]])
        lines = out.splitlines()
        assert set(lines[1]) == {"-"}

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_custom_float_format(self):
        out = render_table(["v"], [[0.123456]], float_format="{:.1f}")
        assert "0.1" in out

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out


class TestRenderBars:
    def test_values_shown(self):
        out = render_bars(["x", "y"], [0.5, 1.0])
        assert "0.500" in out and "1.000" in out

    def test_bar_lengths_proportional(self):
        out = render_bars(["lo", "hi"], [0.25, 1.0], width=40, vmax=1.0)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 40

    def test_label_value_mismatch(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert render_bars([], []) == "(no data)"


class TestRenderGroupedBars:
    def test_structure(self):
        out = render_grouped_bars(
            ["P", "FPR"], {"s=0": [0.5, 0.2], "s=1": [0.4, 0.3]}
        )
        assert "P:" in out and "FPR:" in out
        assert "s=0" in out and "s=1" in out


class TestRenderSeries:
    def test_legend_and_axes(self):
        out = render_series(
            [0.0, 0.5, 1.0], {"auc": [0.6, 0.7, 0.8]}, x_label="gamma"
        )
        assert "auc" in out and "gamma" in out
        assert "0.800" in out and "0.600" in out

    def test_multiple_series_distinct_markers(self):
        out = render_series(
            [0, 1], {"a": [0.1, 0.2], "b": [0.3, 0.4]}
        )
        assert "o = a" in out and "x = b" in out

    def test_constant_series_safe(self):
        out = render_series([0, 1], {"flat": [0.5, 0.5]})
        assert "flat" in out

    def test_nan_values_skipped(self):
        out = render_series([0, 1, 2], {"s": [0.1, float("nan"), 0.3]})
        assert "s" in out

    def test_empty(self):
        assert render_series([0], {}) == "(no data)"


class TestRenderDecisionField:
    @pytest.fixture
    def points(self):
        return np.array([[-1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])

    def test_shading_follows_probability(self, points):
        out = render_decision_field(
            points,
            np.array(["a", "a", "b", "b"]),
            lambda grid: (grid[:, 0] > 0).astype(float),
            width=20,
            height=8,
        )
        lines = out.splitlines()[:8]
        # left half near-empty shading, right half full blocks
        assert any("█" in line[12:] for line in lines)
        assert all("█" not in line[:6] for line in lines)

    def test_markers_drawn_on_top(self, points):
        out = render_decision_field(
            points,
            np.array(["a", "a", "b", "b"]),
            lambda grid: np.full(len(grid), 0.99),
        )
        assert "o" in out and "+" in out
        assert "o = a" in out

    def test_probability_range_validated(self, points):
        with pytest.raises(ValidationError, match="probability"):
            render_decision_field(
                points,
                np.array(["a"] * 4),
                lambda grid: np.full(len(grid), 3.0),
            )

    def test_bad_points_shape(self):
        with pytest.raises(ValidationError, match="shape"):
            render_decision_field(
                np.ones((3, 3)), np.array(["a"] * 3), lambda g: np.zeros(len(g))
            )


class TestRenderScatter:
    def test_markers_and_legend(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        out = render_scatter(points, np.array(["a", "b", "a"]))
        assert "o = a" in out and "+ = b" in out

    def test_bad_shape(self):
        with pytest.raises(ValidationError, match="shape"):
            render_scatter(np.ones((3, 3)), np.array(["a", "b", "c"]))

    def test_category_mismatch(self):
        with pytest.raises(ValidationError, match="align"):
            render_scatter(np.ones((3, 2)), np.array(["a"]))

    def test_degenerate_points_safe(self):
        out = render_scatter(np.zeros((4, 2)), np.array(["a"] * 4))
        assert "o = a" in out


class TestRenderDegenerateInputs:
    """Edge cases the sweep/aggregate pipelines can legitimately emit:
    empty series dicts, single-point sweeps, and NaN-valued metrics
    (e.g. per-group AUC on a single-class group)."""

    # -- render_series ------------------------------------------------------

    def test_series_all_nan_is_no_data(self):
        nan = float("nan")
        assert render_series([0, 1], {"s": [nan, nan]}) == "(no data)"

    def test_series_single_point(self):
        out = render_series([0.5], {"auc": [0.7]}, x_label="gamma")
        assert "auc" in out and "gamma" in out
        assert "0.700" in out  # the lone value labels both axis extremes

    def test_series_single_point_nan_x_span(self):
        # x_min == x_max triggers the degenerate-span guard; must not div/0.
        out = render_series([1.0], {"a": [0.2], "b": [0.4]})
        assert "o = a" in out and "x = b" in out

    def test_series_mixed_nan_keeps_finite_extent(self):
        out = render_series(
            [0, 1, 2], {"s": [0.2, float("nan"), 0.8]}
        )
        assert "0.800" in out and "0.200" in out

    def test_series_empty_x_with_empty_series(self):
        assert render_series([], {}) == "(no data)"

    def test_series_nan_only_series_alongside_finite(self):
        nan = float("nan")
        out = render_series([0, 1], {"dead": [nan, nan], "live": [0.1, 0.9]})
        assert "live" in out and "dead" in out  # legend still lists both

    # -- render_bars --------------------------------------------------------

    def test_bars_single_value(self):
        out = render_bars(["only"], [0.42])
        assert "only" in out and "0.420" in out

    def test_bars_all_zero_values(self):
        # vmax guard: max(values) == 0 must not divide by zero.
        out = render_bars(["a", "b"], [0.0, 0.0])
        assert "0.000" in out

    def test_bars_negative_values_clamped(self):
        out = render_bars(["neg", "pos"], [-0.5, 0.5])
        lines = out.splitlines()
        assert lines[0].count("█") == 0
        assert "-0.500" in lines[0]

    # -- render_grouped_bars ------------------------------------------------

    def test_grouped_bars_empty_series(self):
        assert render_grouped_bars(["P"], {}) == "(no data)"

    def test_grouped_bars_empty_value_lists(self):
        assert render_grouped_bars([], {"s=0": [], "s=1": []}) == "(no data)"

    def test_grouped_bars_all_zero(self):
        out = render_grouped_bars(["P"], {"s=0": [0.0], "s=1": [0.0]})
        assert "0.000" in out

    # -- render_table -------------------------------------------------------

    def test_table_nan_cell_renders(self):
        out = render_table(["m", "auc"], [["pfr", float("nan")]])
        assert "nan" in out

    def test_table_empty_rows_keeps_header_rule(self):
        out = render_table(["alpha", "beta"], [])
        lines = out.splitlines()
        assert lines[0].startswith("alpha")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 2
