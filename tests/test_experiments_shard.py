"""Tests for deterministic RunSpec sharding (experiments.spec.shard_of).

The scale-out contract: for any K the shards are a disjoint cover of the
compiled cell list, assignments are a pure function of each cell's task
digest (stable under grid widening — existing cells never change shard),
and a sharded-then-merged execution rebuilds a report bitwise identical
to the unsharded run.
"""

import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    RunSpec,
    compile_cells,
    parse_shard,
    run_spec,
    shard_of,
)
from repro.store import RunLedger, merge_stores


def _spec(gammas=(0.0, 0.5), seeds=(0, 1), methods=("original", "pfr")):
    return RunSpec.from_dict({
        "name": "shardable",
        "datasets": [{"name": "synthetic", "scale": 0.3}],
        "methods": list(methods),
        "gammas": list(gammas),
        "seeds": list(seeds),
        "harness": {"n_components": 2},
    })


@pytest.fixture(scope="module")
def base_cells():
    """Compiled cells of the base spec (module-scoped; compilation
    materializes datasets to fingerprint them)."""
    return compile_cells(_spec())


class TestParseShard:
    def test_none_passthrough(self):
        assert parse_shard(None) is None

    def test_string_and_pair_forms(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        assert parse_shard((1, 2)) == (1, 2)
        assert parse_shard([1, 2]) == (1, 2)

    @pytest.mark.parametrize("bad", ["2", "a/b", "1/0", "2/2", "-1/2", "3/2"])
    def test_invalid_strings(self, bad):
        with pytest.raises(ValidationError):
            parse_shard(bad)

    def test_invalid_objects(self):
        with pytest.raises(ValidationError):
            parse_shard(object())
        with pytest.raises(ValidationError):
            parse_shard((1, 2, 3))


class TestShardOf:
    def test_range_and_determinism(self):
        digest = "ab" * 32
        for k in (1, 2, 3, 7, 64):
            index = shard_of(digest, k)
            assert 0 <= index < k
            assert shard_of(digest, k) == index

    def test_single_shard_takes_everything(self):
        assert shard_of("ff" * 32, 1) == 0

    def test_validates_inputs(self):
        with pytest.raises(ValidationError):
            shard_of("ab" * 32, 0)
        with pytest.raises(ValidationError):
            shard_of("ab" * 32, 1.5)
        with pytest.raises(ValidationError):
            shard_of("not-hex!", 2)


class TestPartitionProperties:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_disjoint_cover_for_any_k(self, base_cells, k):
        shards = [
            {c["digest"] for c in base_cells if shard_of(c["digest"], k) == i}
            for i in range(k)
        ]
        union = set().union(*shards)
        assert union == {c["digest"] for c in base_cells}
        assert sum(len(s) for s in shards) == len(base_cells)  # disjoint

    def test_stable_under_grid_widening(self, base_cells):
        # Widen every axis: more γ, more seeds, one more method. Cells of
        # the original grid keep their digests and therefore their shard.
        widened = compile_cells(
            _spec(
                gammas=(0.0, 0.5, 0.25, 1.0),
                seeds=(0, 1, 2),
                methods=("original", "pfr", "kpfr"),
            )
        )
        base = {c["digest"] for c in base_cells}
        widened_digests = {c["digest"] for c in widened}
        assert base <= widened_digests  # old cells still exist
        for k in (2, 3, 5):
            before = {d: shard_of(d, k) for d in base}
            after = {
                c["digest"]: shard_of(c["digest"], k)
                for c in widened
                if c["digest"] in base
            }
            assert before == after

    def test_assignment_independent_of_cell_order(self, base_cells):
        # The shard is a function of the digest alone — shuffling the
        # compiled list (or reordering the spec axes) changes nothing.
        for cell in reversed(base_cells):
            assert shard_of(cell["digest"], 3) == shard_of(
                cell["digest"], 3
            )


class TestShardedExecution:
    @pytest.fixture(scope="class")
    def executed(self, tmp_path_factory):
        """Unsharded run + 2-shard run into separate stores + merge."""
        root = tmp_path_factory.mktemp("sharded")
        spec = _spec()
        full = run_spec(spec, store=root / "full")
        shard_reports = [
            run_spec(spec, store=root / f"s{i}", shard=(i, 2))
            for i in range(2)
        ]
        merge_report = merge_stores(
            root / "merged", root / "s0", root / "s1"
        )
        merged = run_spec(spec, store=root / "merged")
        return spec, full, shard_reports, merge_report, merged, root

    def test_shards_cover_matrix(self, executed):
        spec, full, shard_reports, _merge, _merged, _root = executed
        shard_digests = [
            {c["digest"] for c in r.cells} for r in shard_reports
        ]
        assert set().union(*shard_digests) == {
            c["digest"] for c in full.cells
        }
        assert sum(r.n_total for r in shard_reports) == full.n_total

    def test_shard_cells_carry_shard_index(self, executed):
        _spec_, _full, shard_reports, _merge, _merged, _root = executed
        for i, report in enumerate(shard_reports):
            assert all(c["shard"] == i for c in report.cells)
            assert report.telemetry["shard"] == f"{i}/2"

    def test_merge_unions_without_conflicts(self, executed):
        _spec_, full, _shards, merge_report, _merged, root = executed
        assert not merge_report.conflicts
        assert merge_report.n_copied == full.n_total
        assert RunLedger(root / "merged").verify()["problems"] == []

    def test_merged_report_bitwise_identical_to_unsharded(self, executed):
        _spec_, full, _shards, _merge, merged, _root = executed
        assert merged.n_cached == merged.n_total == full.n_total
        assert [c["digest"] for c in merged.cells] == [
            c["digest"] for c in full.cells
        ]
        for key, result in full.results.items():
            other = merged.results[key]
            assert result.auc == other.auc
            assert result.consistency_wf == other.consistency_wf
            assert result.consistency_wx == other.consistency_wx
        assert set(merged.aggregates) == set(full.aggregates)
        for key in full.aggregates:
            assert merged.aggregates[key].mean == full.aggregates[key].mean
            assert merged.aggregates[key].std == full.aggregates[key].std
        assert merged.to_json()["aggregates"] == full.to_json()["aggregates"]

    def test_no_partial_aggregates_leave_a_shard(self, executed):
        # A shard that holds only some of a (dataset, method, γ) group's
        # seeds must not publish a mean/std for it.
        spec, _full, shard_reports, _merge, _merged, _root = executed
        for report in shard_reports:
            seeds_seen = {}
            for cell in report.cells:
                seeds_seen.setdefault(
                    (cell["dataset"], cell["method"], cell["gamma"]), set()
                ).add(cell["seed"])
            for key, agg in report.aggregates.items():
                assert seeds_seen[key] == set(spec.seeds)
                assert agg.n_runs == len(spec.seeds)
            for key, seeds in seeds_seen.items():
                if seeds != set(spec.seeds):
                    assert key not in report.aggregates

    def test_string_shard_form_accepted(self, executed):
        spec, _full, shard_reports, _merge, _merged, root = executed
        again = run_spec(spec, store=root / "s0", shard="0/2")
        assert again.n_total == shard_reports[0].n_total
        assert again.n_cached == again.n_total  # fully resumed

    def test_unsharded_report_has_no_shard_keys(self, executed):
        _spec_, full, _shards, _merge, merged, _root = executed
        for report in (full, merged):
            assert all("shard" not in c for c in report.cells)
            assert "shard" not in report.telemetry


class TestErrorPathsNameTheStore:
    def test_run_spec_requires_store_names_value(self):
        with pytest.raises(ValidationError, match="None"):
            run_spec(_spec(), store=None)

    def test_missing_cell_error_names_store_path(self, tmp_path, monkeypatch):
        # Defeat the write-through so post-dispatch read-back finds
        # nothing: the error must say *which* store the cell vanished
        # from, not just that it vanished. The stub still returns an
        # entry (run_method decodes it) — it just never touches disk.
        from repro.store import LedgerEntry, task_digest

        def phantom_put(self, task, payload, **kwargs):
            return LedgerEntry(
                digest=task_digest(task), kind=str(task["kind"]),
                task=task, payload=payload,
            )

        monkeypatch.setattr(RunLedger, "put", phantom_put)
        store = tmp_path / "ledger"
        with pytest.raises(ValidationError, match=str(store)):
            run_spec(
                _spec(gammas=(0.5,), seeds=(0,), methods=("original",)),
                store=store,
            )
