"""Tests for repro.experiments.spec — declarative run specs + the runner.

Includes the kill-and-resume acceptance: interrupting a multi-seed γ-sweep
midway and re-running the same spec recomputes only the missing cells and
yields bitwise-identical aggregates to an uninterrupted run, both serially
and at ``workers=2``.
"""

import json

import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    ExperimentHarness,
    RunSpec,
    load_run_spec,
    run_spec,
)
from repro.store import RunLedger

_SPEC = {
    "name": "tiny",
    "datasets": [{"name": "synthetic", "scale": 0.3}],
    "methods": ["original", "pfr"],
    "gammas": [0.0, 0.5],
    "seeds": [0, 1],
    "harness": {"n_components": 2},
    "method_params": {"pfr": {"C": 1.0}},
}


def _sweep_spec():
    """A 6-cell single-method sweep used by the resume tests."""
    return RunSpec.from_dict({
        "name": "resume",
        "datasets": [{"name": "synthetic", "scale": 0.3}],
        "methods": ["pfr"],
        "gammas": [0.0, 0.3, 0.6],
        "seeds": [0, 1],
        "harness": {"n_components": 2},
    })


def _interrupt_after(monkeypatch, n_cells: int):
    """Patch run_method to die after ``n_cells`` successful cells."""
    original = ExperimentHarness.run_method
    calls = {"n": 0}

    def failing(self, *args, **kwargs):
        if calls["n"] >= n_cells:
            raise RuntimeError("simulated kill")
        calls["n"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(ExperimentHarness, "run_method", failing)


def _assert_same_aggregates(a, b):
    assert set(a.aggregates) == set(b.aggregates)
    for key in a.aggregates:
        assert a.aggregates[key].mean == b.aggregates[key].mean
        assert a.aggregates[key].std == b.aggregates[key].std
        assert a.aggregates[key].n_runs == b.aggregates[key].n_runs


class TestRunSpecValidation:
    def test_happy_path(self):
        spec = RunSpec.from_dict(_SPEC)
        assert spec.name == "tiny"
        assert spec.datasets == (("synthetic", 0.3),)
        assert spec.methods == ("original", "pfr")
        assert spec.gammas == (0.0, 0.5)
        assert spec.seeds == (0, 1)
        assert spec.n_cells == 8

    def test_bare_dataset_name(self):
        spec = RunSpec.from_dict({**_SPEC, "datasets": ["synthetic"]})
        assert spec.datasets == (("synthetic", 1.0),)

    def test_defaults(self):
        spec = RunSpec.from_dict(
            {"datasets": ["synthetic"], "methods": ["pfr"]}
        )
        assert spec.name == "run"
        assert spec.gammas == (0.5,)
        assert spec.seeds == (0,)

    def test_seed_count_derivation(self):
        from repro.experiments import spawn_seeds

        spec = RunSpec.from_dict({**_SPEC, "seeds": 3})
        assert spec.seeds == spawn_seeds(0, 3)
        rooted = RunSpec.from_dict(
            {**_SPEC, "seeds": {"count": 3, "root": 7}}
        )
        assert rooted.seeds == spawn_seeds(7, 3)

    @pytest.mark.parametrize(
        "patch, message",
        [
            ({"datasets": []}, "datasets"),
            ({"datasets": ["unheard-of"]}, "unknown dataset"),
            ({"datasets": [{"name": "synthetic", "bogus": 1}]}, "bogus"),
            (
                {"datasets": [
                    {"name": "synthetic", "scale": 0.3},
                    {"name": "synthetic", "scale": 1.0},
                ]},
                "duplicates",
            ),
            ({"methods": []}, "methods"),
            ({"methods": ["pfr", "pfr"]}, "duplicates"),
            ({"gammas": []}, "gamma"),
            ({"gammas": [0.5, 0.5]}, "duplicates"),
            ({"seeds": []}, "seed"),
            ({"seeds": [1, 1]}, "duplicates"),
            ({"seeds": 0}, "count"),
            ({"seeds": {"count": 2, "bogus": 1}}, "bogus"),
            ({"harness": {"seed": 1}}, "harness"),
            ({"harness": {"workers": 2}}, "harness"),
            ({"method_params": {"lfr": {}}}, "method_params"),
            ({"method_params": {"pfr": {"gamma": 0.3}}}, "gammas' axis"),
            ({"method_params": {"pfr": {"workers": 2}}}, "runtime"),
            ({"bogus": 1}, "bogus"),
        ],
    )
    def test_rejections(self, patch, message):
        with pytest.raises(ValidationError, match=message):
            RunSpec.from_dict({**_SPEC, **patch})

    def test_non_mapping(self):
        with pytest.raises(ValidationError, match="mapping"):
            RunSpec.from_dict([1, 2])

    def test_to_dict_roundtrip(self):
        spec = RunSpec.from_dict(_SPEC)
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestLoadRunSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_SPEC))
        assert load_run_spec(path) == RunSpec.from_dict(_SPEC)

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(_SPEC))
        assert load_run_spec(path) == RunSpec.from_dict(_SPEC)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_run_spec(tmp_path / "nope.yaml")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="invalid JSON"):
            load_run_spec(path)

    def test_example_spec_loads(self):
        spec = load_run_spec("examples/run_spec.yaml")
        assert spec.n_cells > 0


class TestRunSpecExecution:
    def test_cold_then_warm(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        cold = run_spec(spec, store=tmp_path)
        assert (cold.n_total, cold.n_cached, cold.n_computed) == (8, 0, 8)
        warm = run_spec(spec, store=tmp_path)
        assert (warm.n_total, warm.n_cached, warm.n_computed) == (8, 8, 0)
        assert warm.hit_rate == 1.0
        _assert_same_aggregates(cold, warm)

    def test_results_match_storeless_harness(self, tmp_path):
        from repro.experiments import make_workload

        spec = RunSpec.from_dict(_SPEC)
        report = run_spec(spec, store=tmp_path)
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2,
        )
        direct = harness.run_method("pfr", gamma=0.5, C=1.0)
        ledgered = report.results[("synthetic", "pfr", 0.5, 0)]
        assert ledgered.auc == direct.auc
        assert ledgered.consistency_wf == direct.consistency_wf
        assert ledgered.rates.positive_rate[0] == direct.rates.positive_rate[0]

    def test_incremental_gamma_extension(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        run_spec(spec, store=tmp_path)
        widened = RunSpec.from_dict({**_SPEC, "gammas": [0.0, 0.5, 0.9]})
        report = run_spec(widened, store=tmp_path)
        # Only the new γ's cells (2 methods × 2 seeds) are computed.
        assert report.n_total == 12
        assert report.n_cached == 8
        assert report.n_computed == 4
        computed = [c for c in report.cells if not c["cached"]]
        assert {c["gamma"] for c in computed} == {0.9}

    def test_incremental_seed_extension(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        run_spec(spec, store=tmp_path)
        widened = RunSpec.from_dict({**_SPEC, "seeds": [0, 1, 2]})
        report = run_spec(widened, store=tmp_path)
        computed = [c for c in report.cells if not c["cached"]]
        assert {c["seed"] for c in computed} == {2}

    def test_requires_store(self):
        with pytest.raises(ValidationError, match="store"):
            run_spec(RunSpec.from_dict(_SPEC), store=None)

    def test_single_seed_has_no_aggregates(self, tmp_path):
        spec = RunSpec.from_dict({**_SPEC, "seeds": [0]})
        report = run_spec(spec, store=tmp_path)
        assert report.aggregates == {}
        assert len(report.results) == 4

    def test_report_json_shape(self, tmp_path):
        report = run_spec(RunSpec.from_dict(_SPEC), store=tmp_path)
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["total"] == 8
        assert payload["computed"] == 8
        assert payload["hit_rate"] == 0.0
        assert len(payload["cells"]) == 8
        assert any("gamma=0.5" in key for key in payload["aggregates"])

    def test_parallel_matches_serial(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        serial = run_spec(spec, store=tmp_path / "serial")
        parallel = run_spec(spec, store=tmp_path / "parallel", workers=2)
        _assert_same_aggregates(serial, parallel)


class TestKillAndResume:
    """The acceptance criterion: interrupt midway, resume, bit-identical."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """An uninterrupted run of the sweep spec."""
        return run_spec(
            _sweep_spec(), store=tmp_path_factory.mktemp("reference")
        )

    @pytest.mark.parametrize("workers", [None, 2])
    def test_resume_recomputes_only_missing_cells(
        self, tmp_path, monkeypatch, reference, workers
    ):
        spec = _sweep_spec()
        killed_after = 2
        _interrupt_after(monkeypatch, killed_after)
        with pytest.raises(RuntimeError, match="simulated kill"):
            run_spec(spec, store=tmp_path)
        monkeypatch.undo()
        # The completed cells survived the crash...
        ledger = RunLedger(tmp_path)
        assert len(ledger.ls(kind="method_result")) == killed_after

        resumed = run_spec(spec, store=tmp_path, workers=workers)
        # ...and the resume recomputed exactly the missing cells.
        assert resumed.n_total == spec.n_cells
        assert resumed.n_cached == killed_after
        assert resumed.n_computed == spec.n_cells - killed_after
        # Bitwise-identical aggregates to the uninterrupted reference.
        _assert_same_aggregates(resumed, reference)

    def test_interrupted_harness_sweep_resumes(self, tmp_path, monkeypatch):
        """Resume also works below the spec layer, on a bare gamma_sweep."""
        from repro.experiments import make_workload

        def harness():
            return ExperimentHarness(
                make_workload("synthetic", seed=0, scale=0.3),
                seed=0, n_components=2, store=tmp_path,
            )

        reference = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2,
        ).gamma_sweep([0.0, 0.4, 0.8])

        _interrupt_after(monkeypatch, 2)
        with pytest.raises(RuntimeError):
            harness().gamma_sweep([0.0, 0.4, 0.8])
        monkeypatch.undo()
        assert len(RunLedger(tmp_path).ls()) == 2

        resumed = harness().gamma_sweep([0.0, 0.4, 0.8])
        assert [r.auc for r in resumed] == [r.auc for r in reference]
        assert [r.consistency_wf for r in resumed] == [
            r.consistency_wf for r in reference
        ]


class TestHarnessStoreIntegration:
    def test_run_method_cache_hit_skips_computation(self, tmp_path, monkeypatch):
        from repro.experiments import make_workload

        data = make_workload("synthetic", seed=0, scale=0.3)
        first = ExperimentHarness(
            data, seed=0, n_components=2, store=tmp_path
        ).run_method("pfr", gamma=0.5)

        harness = ExperimentHarness(
            data, seed=0, n_components=2, store=tmp_path
        )
        monkeypatch.setattr(
            ExperimentHarness, "_run_method_direct",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("cache miss: recomputed a ledgered cell")
            ),
        )
        cached = harness.run_method("pfr", gamma=0.5)
        assert cached.auc == first.auc

    def test_tune_reads_through_ledger(self, tmp_path, monkeypatch):
        from repro.experiments import make_workload

        grid = {"gamma": [0.2, 0.8], "C": [1.0]}
        data = make_workload("synthetic", seed=0, scale=0.3)
        first = ExperimentHarness(
            data, seed=0, n_components=2, store=tmp_path
        ).tune("pfr", grid, n_splits=3)
        assert len(RunLedger(tmp_path).ls(kind="tuned_point")) == 2

        harness = ExperimentHarness(
            data, seed=0, n_components=2, store=tmp_path
        )
        monkeypatch.setattr(
            ExperimentHarness, "_score_grid_point_direct",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("cache miss: re-scored a ledgered grid point")
            ),
        )
        warm = harness.tune("pfr", grid, n_splits=3)
        assert warm["best_params"] == first["best_params"]
        assert warm["best_score"] == first["best_score"]
        assert warm["results"] == first["results"]

    def test_tune_methods_store_is_scoped_to_the_call(self, tmp_path):
        """tune_methods(store=...) must not leave the harness persisting."""
        from repro.experiments import make_workload, tune_methods

        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2,
        )
        tune_methods(
            harness, methods=("pfr",),
            grids={"pfr": {"gamma": [0.5], "C": [1.0]}},
            n_splits=3, store=tmp_path,
        )
        assert len(RunLedger(tmp_path).ls(kind="tuned_point")) == 1
        assert harness.store is None  # restored
        harness.run_method("pfr", gamma=0.5)
        assert RunLedger(tmp_path).ls(kind="method_result") == []

    def test_tune_grid_extension_scores_only_new_points(self, tmp_path):
        from repro.experiments import make_workload

        data = make_workload("synthetic", seed=0, scale=0.3)
        harness = ExperimentHarness(
            data, seed=0, n_components=2, store=tmp_path
        )
        harness.tune("pfr", {"gamma": [0.2, 0.8], "C": [1.0]}, n_splits=3)
        harness.tune("pfr", {"gamma": [0.2, 0.8, 0.5], "C": [1.0]}, n_splits=3)
        assert len(RunLedger(tmp_path).ls(kind="tuned_point")) == 3

    def test_repeat_methods_through_store(self, tmp_path):
        from repro.experiments import WorkloadFactory, repeat_methods

        factory = WorkloadFactory("synthetic", scale=0.3)
        kwargs = dict(
            seeds=(0, 1), gamma=0.5,
            harness_kwargs={"n_components": 2},
        )
        plain = repeat_methods(factory, ("pfr",), **kwargs)
        stored = repeat_methods(factory, ("pfr",), store=tmp_path, **kwargs)
        assert stored["pfr"].mean == plain["pfr"].mean
        assert stored["pfr"].std == plain["pfr"].std
        assert len(RunLedger(tmp_path).ls(kind="method_result")) == 2
        # Warm re-run decodes every cell from the ledger.
        warm = repeat_methods(factory, ("pfr",), store=tmp_path, **kwargs)
        assert warm["pfr"].mean == plain["pfr"].mean

    def test_figure_driver_reads_through_store(self, tmp_path):
        from repro.experiments import figure2

        cold = figure2(scale=0.3, store=tmp_path)
        assert len(RunLedger(tmp_path).ls(kind="method_result")) == 4
        warm = figure2(scale=0.3, store=tmp_path)
        plain = figure2(scale=0.3)
        for method, result in plain.data["results"].items():
            assert warm.data["results"][method].auc == result.auc
        assert warm.text == cold.text == plain.text
