"""Tests for repro.experiments.summary and the report CLI command."""

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.summary import workload_report


class TestWorkloadReport:
    @pytest.fixture(scope="class")
    def report(self):
        return workload_report("synthetic", scale=0.3, seed=0,
                               gammas=(0.0, 1.0))

    def test_sections_present(self, report):
        for section in ("== dataset ==", "== fairness graph ==",
                        "== methods ==", "== PFR Pareto frontier"):
            assert section in report

    def test_all_methods_listed(self, report):
        for method in ("original", "ifair", "lfr", "pfr", "hardt"):
            assert method in report

    def test_header_records_provenance(self, report):
        assert "scale=0.3" in report
        assert "seed=0" in report

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            workload_report("mnist")


class TestReportCommand:
    def test_cli_report(self, capsys):
        assert main(["report", "synthetic", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "workload report: synthetic" in out
        assert "Pareto" in out

    def test_cli_report_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(
            ["report", "synthetic", "--scale", "0.2", "--output", str(target)]
        ) == 0
        capsys.readouterr()
        assert "== methods ==" in target.read_text()

    def test_cli_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["report", "cifar"])
