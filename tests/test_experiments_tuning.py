"""Tests for repro.experiments.tuning — the §4.1 grid-search protocol."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    ExperimentHarness,
    apply_tuned,
    default_grid,
    tune_methods,
)


@pytest.fixture
def harness(small_admissions):
    return ExperimentHarness(small_admissions, seed=0, n_components=2)


class TestDefaultGrid:
    def test_known_methods(self):
        for method in ("original", "pfr", "ifair", "lfr"):
            grid = default_grid(method)
            assert grid and all(isinstance(v, list) for v in grid.values())

    def test_plus_suffix_accepted(self):
        assert default_grid("pfr") == default_grid("pfr+")

    def test_returns_copy(self):
        grid = default_grid("pfr")
        grid["gamma"].append(99.0)
        assert 99.0 not in default_grid("pfr")["gamma"]

    def test_unknown_method(self):
        with pytest.raises(ValidationError, match="no default grid"):
            default_grid("hardt")


class TestTuneMethods:
    def test_tunes_requested_methods(self, harness):
        out = tune_methods(
            harness,
            methods=("original", "pfr"),
            grids={
                "original": {"C": [0.1, 1.0]},
                "pfr": {"gamma": [0.0, 0.9], "C": [1.0]},
            },
            n_splits=3,
        )
        assert set(out) == {"original", "pfr"}
        for tuned in out.values():
            assert "best_params" in tuned
            assert tuned["best_score"] > 0.5

    def test_pfr_prefers_high_gamma_on_synthetic(self, admissions):
        # On the synthetic workload the fairness graph matches ground truth,
        # so the tuning protocol itself should discover that high γ wins.
        harness = ExperimentHarness(admissions, seed=0, n_components=2)
        out = tune_methods(
            harness,
            methods=("pfr",),
            grids={"pfr": {"gamma": [0.0, 0.9], "C": [1.0]}},
            n_splits=3,
        )
        assert out["pfr"]["best_params"]["gamma"] == 0.9

    def test_apply_tuned_runs_at_operating_point(self, harness):
        tuned = tune_methods(
            harness,
            methods=("pfr",),
            grids={"pfr": {"gamma": [0.5], "C": [1.0]}},
            n_splits=3,
        )["pfr"]
        result = apply_tuned(harness, "pfr", tuned)
        assert np.isfinite(result.auc)
        assert result.method == "pfr"
