"""Tests for the pluggable k-NN backends in repro.graphs.knn.

The contract under test: ``backend="exact"`` and ``backend="blocked"``
produce **bitwise-identical** graphs (the blocked path replicates the
KD-tree's distance arithmetic), while ``backend="lsh"`` is approximate
but seeded, deterministic, and structurally well-formed, with measured
recall high enough on clustered data to be useful.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphConstructionError
from repro.graphs import knn_cross, knn_graph, pairwise_sq_distances
from repro.graphs.knn import KNN_BACKENDS


def _graph_bytes(W) -> tuple:
    W = W.tocsr()
    return (W.data.tobytes(), W.indices.tobytes(), W.indptr.tobytes())


def _data(seed: int, n: int, m: int = 6) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, m))


class TestBackendRegistry:
    def test_backends_exported(self):
        assert KNN_BACKENDS == ("exact", "blocked", "lsh")

    def test_unknown_backend_rejected(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(GraphConstructionError, match="backend"):
            knn_graph(X, n_neighbors=3, backend="annoy")

    def test_unknown_backend_option_rejected(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(GraphConstructionError, match="option"):
            knn_graph(X, n_neighbors=3, backend="lsh", backend_options={"tables": 4})

    def test_bad_dtype_rejected(self, rng):
        X = rng.normal(size=(20, 3))
        with pytest.raises(GraphConstructionError, match="dtype"):
            knn_graph(X, n_neighbors=3, dtype="float16")


class TestExactVsBlocked:
    def test_bitwise_identical_graph(self, rng):
        X = rng.normal(size=(150, 8))
        exact = knn_graph(X, n_neighbors=7, backend="exact")
        blocked = knn_graph(X, n_neighbors=7, backend="blocked")
        assert _graph_bytes(exact) == _graph_bytes(blocked)

    def test_bitwise_identical_with_exclude(self, rng):
        X = rng.normal(size=(90, 6))
        exact = knn_graph(X, n_neighbors=5, exclude=[1, 4], backend="exact")
        blocked = knn_graph(X, n_neighbors=5, exclude=[1, 4], backend="blocked")
        assert _graph_bytes(exact) == _graph_bytes(blocked)

    def test_bitwise_identical_tiny_blocks(self, rng):
        # Force many blocks so the block boundary logic is exercised.
        X = rng.normal(size=(64, 5))
        exact = knn_graph(X, n_neighbors=4, backend="exact")
        blocked = knn_graph(
            X, n_neighbors=4, backend="blocked", backend_options={"block_entries": 256}
        )
        assert _graph_bytes(exact) == _graph_bytes(blocked)

    def test_bitwise_identical_cross(self, rng):
        X = rng.normal(size=(40, 5))
        Y = rng.normal(size=(70, 5))
        exact = knn_cross(X, Y, n_neighbors=6, backend="exact")
        blocked = knn_cross(X, Y, n_neighbors=6, backend="blocked")
        assert exact.data.tobytes() == blocked.data.tobytes()
        assert exact.indices.tobytes() == blocked.indices.tobytes()

    def test_bitwise_identical_binary(self, rng):
        X = rng.normal(size=(60, 4))
        exact = knn_graph(X, n_neighbors=3, binary=True, backend="exact")
        blocked = knn_graph(X, n_neighbors=3, binary=True, backend="blocked")
        assert _graph_bytes(exact) == _graph_bytes(blocked)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 50), k=st.integers(1, 4))
    def test_bitwise_identical_property(self, seed, n, k):
        X = _data(seed, n)
        k = min(k, n - 1)
        exact = knn_graph(X, n_neighbors=k, backend="exact")
        blocked = knn_graph(X, n_neighbors=k, backend="blocked")
        assert _graph_bytes(exact) == _graph_bytes(blocked)


def _recall(approx, exact) -> float:
    """Fraction of exact edges recovered by the approximate graph."""
    a = set(zip(*approx.nonzero()))
    e = list(zip(*exact.nonzero()))
    return sum(1 for edge in e if edge in a) / max(len(e), 1)


class TestLshBackend:
    def test_well_formed(self, rng):
        X = rng.normal(size=(120, 6))
        W = knn_graph(X, n_neighbors=5, backend="lsh", backend_options={"seed": 0})
        assert sp.issparse(W) and W.shape == (120, 120)
        assert (abs(W - W.T) > 0).nnz == 0
        assert np.abs(W.diagonal()).max() == 0.0
        degrees = np.diff(W.tocsr().indptr)
        assert degrees.min() >= 5  # symmetrization only adds edges

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(80, 5))
        opts = {"seed": 3, "n_tables": 6}
        a = knn_graph(X, n_neighbors=4, backend="lsh", backend_options=opts)
        b = knn_graph(X, n_neighbors=4, backend="lsh", backend_options=opts)
        assert _graph_bytes(a) == _graph_bytes(b)

    def test_recall_on_clustered_data(self):
        rng = np.random.default_rng(0)
        centers = rng.normal(scale=8.0, size=(6, 10))
        X = np.concatenate(
            [center + rng.normal(size=(60, 10)) for center in centers]
        )
        exact = knn_graph(X, n_neighbors=5, backend="exact", binary=True)
        approx = knn_graph(
            X,
            n_neighbors=5,
            backend="lsh",
            binary=True,
            backend_options={"seed": 0, "n_tables": 12},
        )
        assert _recall(approx, exact) >= 0.9

    def test_more_tables_no_worse_recall_floor(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 8))
        exact = knn_graph(X, n_neighbors=4, backend="exact", binary=True)
        many = knn_graph(
            X,
            n_neighbors=4,
            backend="lsh",
            binary=True,
            backend_options={"seed": 0, "n_tables": 16},
        )
        assert _recall(many, exact) >= 0.5

    def test_cross_lsh_well_formed(self, rng):
        X = rng.normal(size=(30, 5))
        Y = rng.normal(size=(90, 5))
        C = knn_cross(X, Y, n_neighbors=4, backend="lsh", backend_options={"seed": 0})
        assert C.shape == (30, 90)
        assert np.all(np.diff(C.tocsr().indptr) == 4)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000), n=st.integers(6, 40), k=st.integers(1, 3))
    def test_well_formed_property(self, seed, n, k):
        X = _data(seed, n)
        k = min(k, n - 1)
        W = knn_graph(
            X, n_neighbors=k, backend="lsh", backend_options={"seed": seed % 7}
        )
        assert (abs(W - W.T) > 0).nnz == 0
        assert np.abs(W.diagonal()).max() == 0.0
        assert np.diff(W.tocsr().indptr).min() >= k


class TestEdgeCases:
    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_k_equals_one(self, rng, backend):
        X = rng.normal(size=(25, 4))
        opts = {"seed": 0} if backend == "lsh" else None
        W = knn_graph(X, n_neighbors=1, backend=backend, backend_options=opts)
        assert np.diff(W.tocsr().indptr).min() >= 1
        assert np.abs(W.diagonal()).max() == 0.0

    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_exclude_drops_columns_from_metric(self, rng, backend):
        # The excluded column is pure noise; graphs with and without it
        # must be identical once it is excluded.
        base = rng.normal(size=(40, 4))
        noisy = np.column_stack([base, rng.normal(scale=50.0, size=40)])
        opts = {"seed": 0} if backend == "lsh" else None
        W_base = knn_graph(base, n_neighbors=3, backend=backend, backend_options=opts)
        W_excl = knn_graph(
            noisy, n_neighbors=3, exclude=[4], backend=backend, backend_options=opts
        )
        assert _graph_bytes(W_base) == _graph_bytes(W_excl)

    @pytest.mark.parametrize("backend", ("exact", "blocked"))
    def test_duplicate_rows_self_excluded(self, backend):
        # Regression: with many coincident rows the self-point used to
        # survive distance-based filtering and silently shrink degrees.
        X = np.repeat(np.arange(6.0)[:, None], 5, axis=0) @ np.ones((1, 3))
        W = knn_graph(X, n_neighbors=4, backend=backend, binary=True)
        assert np.abs(W.diagonal()).max() == 0.0
        assert np.diff(W.tocsr().indptr).min() >= 4

    def test_all_identical_rows(self):
        X = np.ones((10, 3))
        W = knn_graph(X, n_neighbors=3, binary=True)
        assert np.abs(W.diagonal()).max() == 0.0
        assert np.diff(W.tocsr().indptr).min() >= 3


class TestDtypePipeline:
    def test_pairwise_sq_distances_preserves_float32(self, rng):
        # Regression: the expansion formula used to upcast to float64.
        X = rng.normal(size=(20, 4)).astype(np.float32)
        assert pairwise_sq_distances(X).dtype == np.float32
        assert pairwise_sq_distances(X, X[:5]).dtype == np.float32

    def test_pairwise_sq_distances_mixed_dtypes_upcast(self, rng):
        X32 = rng.normal(size=(10, 3)).astype(np.float32)
        X64 = rng.normal(size=(8, 3))
        assert pairwise_sq_distances(X32, X64).dtype == np.float64

    @pytest.mark.parametrize("backend", KNN_BACKENDS)
    def test_graph_weights_float32(self, rng, backend):
        X = rng.normal(size=(60, 5))
        opts = {"seed": 0} if backend == "lsh" else None
        W = knn_graph(
            X, n_neighbors=4, backend=backend, backend_options=opts, dtype="float32"
        )
        assert W.dtype == np.float32

    def test_float32_close_to_float64(self, rng):
        X = rng.normal(size=(80, 6))
        W64 = knn_graph(X, n_neighbors=5)
        W32 = knn_graph(X, n_neighbors=5, dtype="float32")
        assert W32.nnz == W64.nnz
        np.testing.assert_allclose(
            W32.toarray(), W64.toarray(), rtol=1e-4, atol=1e-5
        )

    def test_default_dtype_is_float64(self, rng):
        X = rng.normal(size=(30, 3)).astype(np.float32)
        # Historical behavior: without an explicit dtype the graph is built
        # (and returned) in float64 regardless of the input dtype.
        assert knn_graph(X, n_neighbors=3).dtype == np.float64
