"""Tests for repro.graphs.elicitation — simulated human judgments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    equivalence_class_graph,
    equivalence_classes_from_pairs,
    likert_judgments,
    noisy_pairwise_judgments,
)


class TestLikertJudgments:
    def test_range_and_coverage(self, rng):
        suitability = rng.normal(size=100)
        levels = likert_judgments(suitability, n_levels=5, coverage=0.7, seed=0)
        judged = levels[levels != -1]
        assert judged.min() >= 1 and judged.max() <= 5
        assert 0.5 < (levels != -1).mean() < 0.9

    def test_noiseless_judge_is_monotone(self, rng):
        suitability = rng.normal(size=60)
        levels = likert_judgments(suitability, n_levels=4, judge_noise=0.0, seed=0)
        order = np.argsort(suitability)
        assert np.all(np.diff(levels[order]) >= 0)

    def test_noiseless_quantile_bands_balanced(self):
        levels = likert_judgments(np.arange(100.0), n_levels=5, seed=0)
        counts = np.bincount(levels, minlength=6)[1:]
        assert counts.max() - counts.min() <= 1

    def test_noise_scrambles_judgments(self, rng):
        suitability = rng.normal(size=200)
        clean = likert_judgments(suitability, n_levels=5, judge_noise=0.0, seed=1)
        noisy = likert_judgments(suitability, n_levels=5, judge_noise=0.5, seed=1)
        assert (clean != noisy).mean() > 0.2

    def test_deterministic(self, rng):
        suitability = rng.normal(size=50)
        a = likert_judgments(suitability, seed=9, coverage=0.8)
        b = likert_judgments(suitability, seed=9, coverage=0.8)
        np.testing.assert_array_equal(a, b)

    def test_feeds_equivalence_graph(self, rng):
        suitability = rng.normal(size=40)
        levels = likert_judgments(suitability, n_levels=3, coverage=0.8, seed=0)
        W = equivalence_class_graph(levels, mask=levels != -1)
        assert W.shape == (40, 40)

    def test_invalid_levels(self):
        with pytest.raises(GraphConstructionError, match="n_levels"):
            likert_judgments([1.0, 2.0], n_levels=1)

    def test_invalid_noise(self):
        with pytest.raises(GraphConstructionError, match="judge_noise"):
            likert_judgments([1.0, 2.0], judge_noise=-0.1)

    def test_invalid_coverage(self):
        with pytest.raises(GraphConstructionError, match="coverage"):
            likert_judgments([1.0, 2.0], coverage=0.0)


class TestNoisyPairwiseJudgments:
    @pytest.fixture
    def classes(self):
        return np.repeat([0, 1, 2, 3], 10)

    def test_perfect_judge(self, classes):
        positives, asked = noisy_pairwise_judgments(
            classes, n_pairs=500, seed=0
        )
        assert len(asked) == 500
        for i, j in positives:
            assert classes[i] == classes[j]

    def test_no_self_pairs(self, classes):
        _, asked = noisy_pairwise_judgments(classes, n_pairs=300, seed=1)
        assert np.all(asked[:, 0] != asked[:, 1])

    def test_false_positives_appear(self, classes):
        positives, _ = noisy_pairwise_judgments(
            classes, n_pairs=2000, false_positive_rate=0.5, seed=2
        )
        wrong = sum(1 for i, j in positives if classes[i] != classes[j])
        assert wrong > 100

    def test_false_negatives_suppress(self, classes):
        full, _ = noisy_pairwise_judgments(classes, n_pairs=2000, seed=3)
        lossy, _ = noisy_pairwise_judgments(
            classes, n_pairs=2000, false_negative_rate=0.9, seed=3
        )
        assert len(lossy) < len(full) * 0.4

    def test_unclassed_individuals_never_similar(self):
        classes = np.array([-1, -1, 5, 5])
        positives, _ = noisy_pairwise_judgments(classes, n_pairs=400, seed=4)
        for i, j in positives:
            assert classes[i] == classes[j] != -1

    def test_invalid_rates(self, classes):
        with pytest.raises(GraphConstructionError, match="false_positive_rate"):
            noisy_pairwise_judgments(classes, n_pairs=5, false_positive_rate=2.0)

    def test_needs_pairs(self, classes):
        with pytest.raises(GraphConstructionError, match="n_pairs"):
            noisy_pairwise_judgments(classes, n_pairs=0)

    def test_needs_two_individuals(self):
        with pytest.raises(GraphConstructionError, match="two individuals"):
            noisy_pairwise_judgments([0], n_pairs=1)


class TestUnionFind:
    def test_transitive_closure(self):
        classes = equivalence_classes_from_pairs([(0, 1), (1, 2)], n=5)
        assert classes[0] == classes[1] == classes[2] != -1
        assert classes[3] == classes[4] == -1

    def test_disjoint_components(self):
        classes = equivalence_classes_from_pairs([(0, 1), (2, 3)], n=4)
        assert classes[0] == classes[1]
        assert classes[2] == classes[3]
        assert classes[0] != classes[2]

    def test_empty_pairs(self):
        classes = equivalence_classes_from_pairs([], n=3)
        np.testing.assert_array_equal(classes, [-1, -1, -1])

    def test_long_chain(self):
        pairs = [(i, i + 1) for i in range(99)]
        classes = equivalence_classes_from_pairs(pairs, n=100)
        assert len(set(classes.tolist())) == 1

    def test_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            equivalence_classes_from_pairs([(0, 9)], n=3)

    def test_recovers_ground_truth_from_noiseless_judgments(self, rng):
        truth = rng.integers(0, 4, size=30)
        positives, _ = noisy_pairwise_judgments(truth, n_pairs=5000, seed=0)
        recovered = equivalence_classes_from_pairs(positives, n=30)
        # With dense noiseless sampling the recovered partition must refine
        # to exactly the ground-truth partition on judged individuals.
        for c in np.unique(recovered[recovered != -1]):
            members = recovered == c
            assert len(np.unique(truth[members])) == 1


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(4, 40),
    n_pairs=st.integers(1, 200),
)
def test_union_find_is_valid_partition_property(seed, n, n_pairs):
    """Recovered classes are a valid partition refinement: every judged
    pair's endpoints share a class, and class ids are contiguous."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, 3, size=n)
    positives, _ = noisy_pairwise_judgments(
        truth, n_pairs=n_pairs, false_positive_rate=0.2, seed=seed
    )
    classes = equivalence_classes_from_pairs(positives, n=n)
    for i, j in positives:
        assert classes[i] == classes[j] != -1
    used = np.unique(classes[classes != -1])
    np.testing.assert_array_equal(used, np.arange(len(used)))
