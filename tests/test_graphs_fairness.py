"""Tests for repro.graphs.fairness — WF constructions (Definitions 1-3)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    between_group_quantile_graph,
    edge_count,
    equivalence_class_graph,
    pairwise_judgment_graph,
    subsample_edges,
)


class TestEquivalenceClassGraph:
    def test_cliques_per_class(self):
        classes = np.array([0, 0, 0, 1, 1, 2])
        W = equivalence_class_graph(classes).toarray()
        # class 0: triangle, class 1: single edge, class 2: isolated
        assert W[0, 1] == W[0, 2] == W[1, 2] == 1.0
        assert W[3, 4] == 1.0
        assert W[5].sum() == 0.0

    def test_no_edges_between_classes(self):
        classes = np.array([0, 0, 1, 1])
        W = equivalence_class_graph(classes).toarray()
        assert W[0, 2] == W[0, 3] == W[1, 2] == W[1, 3] == 0.0

    def test_symmetric_zero_diagonal(self):
        W = equivalence_class_graph(np.array([0, 0, 1, 1, 0]))
        assert (abs(W - W.T)).nnz == 0
        assert np.all(W.diagonal() == 0.0)

    def test_edge_count(self):
        classes = np.array([7] * 5)  # K5 has 10 edges
        assert edge_count(equivalence_class_graph(classes)) == 10

    def test_mask_excludes_individuals(self):
        classes = np.array([0, 0, 0, 0])
        mask = np.array([True, True, False, True])
        W = equivalence_class_graph(classes, mask=mask).toarray()
        assert W[2].sum() == 0.0
        assert W[0, 1] == 1.0 and W[0, 3] == 1.0

    def test_string_classes(self):
        W = equivalence_class_graph(np.array(["a", "b", "a"]))
        assert W[0, 2] == 1.0
        assert W[0, 1] == 0.0

    def test_mask_length_mismatch(self):
        with pytest.raises(GraphConstructionError, match="mask"):
            equivalence_class_graph(np.array([0, 1]), mask=np.array([True]))

    def test_all_singletons_empty_graph(self):
        W = equivalence_class_graph(np.arange(5))
        assert W.nnz == 0


class TestBetweenGroupQuantileGraph:
    def test_cross_group_only(self, quantile_graph_setup):
        scores, groups, W = quantile_graph_setup
        rows, cols = W.nonzero()
        assert np.all(groups[rows] != groups[cols])

    def test_same_quantile_only(self, quantile_graph_setup):
        scores, groups, W = quantile_graph_setup
        from repro.graphs import within_group_quantiles

        buckets = within_group_quantiles(scores, groups, 4)
        rows, cols = W.nonzero()
        np.testing.assert_array_equal(buckets[rows], buckets[cols])

    def test_bipartite_complete_per_bucket(self):
        # 4 per group, 2 quantiles -> each bucket has 2x2 cross edges.
        scores = np.array([1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0])
        groups = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        W = between_group_quantile_graph(scores, groups, n_quantiles=2)
        assert edge_count(W) == 8

    def test_symmetric_binary(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        assert (abs(W - W.T)).nnz == 0
        assert set(np.unique(W.data)) == {1.0}

    def test_mask_respected(self):
        scores = np.array([1.0, 2.0, 1.0, 2.0])
        groups = np.array([0, 0, 1, 1])
        mask = np.array([True, True, True, False])
        W = between_group_quantile_graph(scores, groups, n_quantiles=2, mask=mask)
        assert W.toarray()[3].sum() == 0.0

    def test_single_group_rejected(self):
        with pytest.raises(GraphConstructionError, match="two groups"):
            between_group_quantile_graph([1.0, 2.0], [0, 0], n_quantiles=2)

    def test_three_groups_multipartite(self):
        scores = np.tile([1.0, 2.0], 3)
        groups = np.repeat([0, 1, 2], 2)
        W = between_group_quantile_graph(scores, groups, n_quantiles=2)
        rows, cols = W.nonzero()
        assert np.all(groups[rows] != groups[cols])
        # each bucket: 3 individuals from 3 different groups -> triangle
        assert edge_count(W) == 6

    def test_length_mismatch(self):
        with pytest.raises(GraphConstructionError, match="align"):
            between_group_quantile_graph([1.0], [0, 1], n_quantiles=2)


class TestPairwiseJudgmentGraph:
    def test_basic(self):
        W = pairwise_judgment_graph([(0, 1), (2, 3)], n=5)
        assert W[0, 1] == 1.0 and W[1, 0] == 1.0
        assert W[2, 3] == 1.0
        assert edge_count(W) == 2

    def test_duplicate_pairs_collapse(self):
        W = pairwise_judgment_graph([(0, 1), (1, 0), (0, 1)], n=3)
        assert edge_count(W) == 1
        assert W.max() == 1.0

    def test_empty(self):
        assert pairwise_judgment_graph([], n=4).nnz == 0

    def test_out_of_range(self):
        with pytest.raises(GraphConstructionError):
            pairwise_judgment_graph([(0, 9)], n=5)

    def test_self_pairs_rejected(self):
        with pytest.raises(GraphConstructionError, match="self-pairs"):
            pairwise_judgment_graph([(1, 1)], n=3)

    def test_bad_shape(self):
        with pytest.raises(GraphConstructionError, match="shape"):
            pairwise_judgment_graph([(0, 1, 2)], n=5)


class TestSubsampleEdges:
    def test_fraction_one_keeps_all(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        assert edge_count(subsample_edges(W, 1.0, seed=0)) == edge_count(W)

    def test_fraction_zero_empties(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        assert edge_count(subsample_edges(W, 0.0, seed=0)) == 0

    def test_fraction_half_roughly_half(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        kept = edge_count(subsample_edges(W, 0.5, seed=0))
        total = edge_count(W)
        assert 0.3 * total < kept < 0.7 * total

    def test_result_symmetric(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        sub = subsample_edges(W, 0.4, seed=1)
        assert (abs(sub - sub.T)).nnz == 0

    def test_subset_of_original(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        sub = subsample_edges(W, 0.4, seed=2)
        # every kept edge must exist in the original graph
        diff = sub - W.minimum(sub)
        assert diff.nnz == 0

    def test_invalid_fraction(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        with pytest.raises(GraphConstructionError):
            subsample_edges(W, 1.5)
