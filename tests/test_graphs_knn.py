"""Tests for repro.graphs.knn — the data-similarity graph WX."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError
from repro.graphs import knn_graph, median_heuristic, pairwise_sq_distances


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        X = rng.normal(size=(12, 4))
        D = pairwise_sq_distances(X)
        direct = ((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(D, direct, atol=1e-9)

    def test_zero_diagonal(self, rng):
        X = rng.normal(size=(8, 3))
        np.testing.assert_allclose(np.diag(pairwise_sq_distances(X)), 0.0, atol=1e-9)

    def test_cross_distances(self, rng):
        X = rng.normal(size=(5, 2))
        Y = rng.normal(size=(7, 2))
        D = pairwise_sq_distances(X, Y)
        assert D.shape == (5, 7)
        assert D.min() >= 0.0

    def test_never_negative_despite_cancellation(self):
        X = np.array([[1e8, 1e8], [1e8, 1e8]])
        assert pairwise_sq_distances(X).min() >= 0.0


class TestMedianHeuristic:
    def test_positive(self, rng):
        assert median_heuristic(rng.normal(size=(30, 3))) > 0

    def test_degenerate_data(self):
        assert median_heuristic(np.ones((10, 2))) == 1.0

    def test_subsampling_is_stable(self, rng):
        X = rng.normal(size=(5000, 2))
        full = median_heuristic(X, sample_size=5000)
        sampled = median_heuristic(X, sample_size=500)
        assert sampled == pytest.approx(full, rel=0.3)


class TestKnnGraph:
    def test_shape_and_sparsity(self, rng):
        X = rng.normal(size=(50, 3))
        W = knn_graph(X, n_neighbors=5)
        assert W.shape == (50, 50)
        assert sp.issparse(W)

    def test_symmetric(self, knn_setup):
        _, W = knn_setup
        assert (abs(W - W.T)).nnz == 0

    def test_zero_diagonal(self, knn_setup):
        _, W = knn_setup
        assert np.all(W.diagonal() == 0.0)

    def test_weights_in_unit_interval(self, knn_setup):
        _, W = knn_setup
        assert W.data.min() > 0.0
        assert W.data.max() <= 1.0

    def test_min_degree_is_k(self, rng):
        # The OR rule guarantees every node keeps at least its own k edges.
        X = rng.normal(size=(40, 3))
        W = knn_graph(X, n_neighbors=4, binary=True)
        degrees = np.asarray((W > 0).sum(axis=1)).ravel()
        assert degrees.min() >= 4

    def test_nearest_neighbor_connected(self, rng):
        X = rng.normal(size=(30, 2))
        W = knn_graph(X, n_neighbors=3).toarray()
        D = pairwise_sq_distances(X)
        np.fill_diagonal(D, np.inf)
        nearest = D.argmin(axis=1)
        for i, j in enumerate(nearest):
            assert W[i, j] > 0.0

    def test_closer_neighbors_heavier(self, rng):
        X = rng.normal(size=(30, 2))
        W = knn_graph(X, n_neighbors=5)
        D = pairwise_sq_distances(X)
        rows, cols = W.nonzero()
        weights = np.asarray(W[rows, cols]).ravel()
        order = np.argsort(D[rows, cols])
        assert np.all(np.diff(weights[order]) <= 1e-12)

    def test_exclude_columns(self, rng):
        # A huge protected column must not affect the graph when excluded.
        X = rng.normal(size=(30, 2))
        protected = rng.integers(0, 2, 30) * 1000.0
        X_aug = np.column_stack([X, protected])
        W_plain = knn_graph(X, n_neighbors=4, bandwidth=1.0)
        W_excl = knn_graph(X_aug, n_neighbors=4, bandwidth=1.0, exclude=[2])
        np.testing.assert_allclose(W_plain.toarray(), W_excl.toarray(), atol=1e-12)

    def test_binary_mode(self, rng):
        W = knn_graph(rng.normal(size=(20, 2)), n_neighbors=3, binary=True)
        assert set(np.unique(W.data)) == {1.0}

    def test_bandwidth_controls_decay(self, rng):
        X = rng.normal(size=(25, 2))
        tight = knn_graph(X, n_neighbors=5, bandwidth=0.01)
        loose = knn_graph(X, n_neighbors=5, bandwidth=100.0)
        assert tight.data.mean() < loose.data.mean()

    def test_invalid_neighbors(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(GraphConstructionError):
            knn_graph(X, n_neighbors=10)
        with pytest.raises(GraphConstructionError):
            knn_graph(X, n_neighbors=0)

    def test_invalid_bandwidth(self, rng):
        with pytest.raises(GraphConstructionError, match="bandwidth"):
            knn_graph(rng.normal(size=(10, 2)), n_neighbors=2, bandwidth=-1.0)

    def test_exclude_everything_rejected(self, rng):
        with pytest.raises(GraphConstructionError, match="every feature"):
            knn_graph(rng.normal(size=(10, 2)), n_neighbors=2, exclude=[0, 1])
