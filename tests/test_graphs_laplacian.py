"""Tests for repro.graphs.laplacian — spectral bookkeeping."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    combine_laplacians,
    degree_vector,
    edge_count,
    graph_density,
    laplacian,
    n_connected_components,
)

PATH_3 = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])


class TestLaplacian:
    def test_combinatorial_values(self):
        L = laplacian(PATH_3).toarray()
        expected = np.array([[1.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 1.0]])
        np.testing.assert_allclose(L, expected)

    def test_rows_sum_to_zero(self, knn_setup):
        _, W = knn_setup
        L = laplacian(W)
        np.testing.assert_allclose(np.asarray(L.sum(axis=1)).ravel(), 0.0, atol=1e-10)

    def test_positive_semidefinite(self, knn_setup):
        _, W = knn_setup
        eigenvalues = np.linalg.eigvalsh(laplacian(W).toarray())
        assert eigenvalues.min() > -1e-9

    def test_quadratic_form_identity(self, rng, knn_setup):
        # xᵀLx == ½ Σ W_ij (x_i - x_j)²  — the identity PFR relies on.
        _, W = knn_setup
        x = rng.normal(size=W.shape[0])
        L = laplacian(W)
        quad = float(x @ (L @ x))
        dense = W.toarray()
        direct = 0.5 * np.sum(dense * (x[:, None] - x[None, :]) ** 2)
        assert quad == pytest.approx(direct, rel=1e-9)

    def test_normalized_diagonal_is_one(self, knn_setup):
        _, W = knn_setup
        L = laplacian(W, normalized=True).toarray()
        np.testing.assert_allclose(np.diag(L), 1.0, atol=1e-10)

    def test_normalized_isolated_vertex_zero_row(self):
        W = sp.csr_matrix(
            (np.ones(2), (np.array([0, 1]), np.array([1, 0]))), shape=(3, 3)
        )
        L = laplacian(W, normalized=True).toarray()
        np.testing.assert_allclose(L[2], 0.0)

    def test_negative_weights_rejected(self):
        W = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(GraphConstructionError, match="non-negative"):
            laplacian(W)

    def test_zero_eigenvalue_per_component(self):
        # two disjoint edges -> 2 components -> eigenvalue 0 multiplicity 2
        W = np.zeros((4, 4))
        W[0, 1] = W[1, 0] = 1.0
        W[2, 3] = W[3, 2] = 1.0
        eigenvalues = np.sort(np.linalg.eigvalsh(laplacian(W).toarray()))
        assert np.sum(np.abs(eigenvalues) < 1e-10) == 2


class TestCombine:
    def test_endpoints(self, knn_setup):
        _, W = knn_setup
        L_x = laplacian(W)
        L_f = laplacian(sp.csr_matrix(W.shape))
        np.testing.assert_allclose(
            combine_laplacians(L_x, L_f, 0.0).toarray(), L_x.toarray()
        )
        np.testing.assert_allclose(
            combine_laplacians(L_x, L_f, 1.0).toarray(), L_f.toarray()
        )

    def test_convexity(self, knn_setup):
        _, W = knn_setup
        L = laplacian(W)
        mixed = combine_laplacians(L, 2.0 * L, 0.5).toarray()
        np.testing.assert_allclose(mixed, 1.5 * L.toarray())

    def test_rescale_balances_energy(self):
        light = laplacian(PATH_3)
        heavy = laplacian(100.0 * PATH_3)
        mixed = combine_laplacians(light, heavy, 0.5, rescale=True).toarray()
        # after rescale both halves have mean diagonal 1, so the mix too
        assert np.trace(mixed) / 3 == pytest.approx(1.0)

    def test_rescale_zero_graph_safe(self):
        empty = laplacian(np.zeros((3, 3)))
        out = combine_laplacians(empty, empty, 0.5, rescale=True)
        assert out.nnz == 0

    def test_invalid_gamma(self):
        L = laplacian(PATH_3)
        with pytest.raises(GraphConstructionError):
            combine_laplacians(L, L, 1.5)

    def test_shape_mismatch(self):
        with pytest.raises(GraphConstructionError, match="shapes"):
            combine_laplacians(laplacian(PATH_3), laplacian(np.zeros((2, 2))), 0.5)


class TestGraphStats:
    def test_degree_vector(self):
        np.testing.assert_allclose(degree_vector(PATH_3), [1.0, 2.0, 1.0])

    def test_edge_count_path(self):
        assert edge_count(PATH_3) == 2

    def test_density(self):
        assert graph_density(PATH_3) == pytest.approx(2 / 3)

    def test_density_tiny_graph(self):
        assert graph_density(np.zeros((1, 1))) == 0.0

    def test_connected_components(self):
        W = np.zeros((5, 5))
        W[0, 1] = W[1, 0] = 1.0
        assert n_connected_components(W) == 4  # edge + 3 isolated
