"""Hypothesis property suite for the graph layer's structural invariants.

Complements ``test_properties_extra.py`` with the guarantees the
landmark-Nyström scaling layer leans on: k-NN graphs (square and
cross-set) stay well-formed for any data and any budget, Laplacians stay
PSD with zero row-sums, and the γ-combination is exactly linear — the
identity that makes :class:`repro.core.SpectralFitPlan`'s "mix once per γ"
stage mathematically free.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    combine_laplacians,
    knn_cross,
    knn_graph,
    laplacian,
)


def _data(seed: int, n: int, m: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, m))


class TestKnnGraphProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 40), k=st.integers(1, 4))
    def test_symmetric_nonnegative_zero_diagonal(self, seed, n, k):
        W = knn_graph(_data(seed, n), n_neighbors=min(k, n - 1))
        assert (abs(W - W.T) > 1e-12).nnz == 0
        assert W.nnz == 0 or W.data.min() >= 0.0
        assert np.abs(W.diagonal()).max() == 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 40), k=st.integers(1, 4))
    def test_weights_bounded_by_one_and_degree_at_least_k(self, seed, n, k):
        k = min(k, n - 1)
        W = knn_graph(_data(seed, n), n_neighbors=k)
        # Heat-kernel weights live in (0, 1]; OR-symmetrization can only
        # add edges, so every row keeps at least its own k neighbors.
        assert W.data.max() <= 1.0 + 1e-12
        assert W.getnnz(axis=1).min() >= k


class TestKnnCrossProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        q=st.integers(1, 25),
        r=st.integers(2, 30),
        k=st.integers(1, 5),
    )
    def test_row_budget_nonnegativity_and_shape(self, seed, q, r, k):
        k = min(k, r)
        W = knn_cross(_data(seed, q), _data(seed + 1, r), n_neighbors=k)
        assert W.shape == (q, r)
        # Cross-set graphs are not symmetrized: the row degree never
        # exceeds the requested budget (underflowed weights may shrink it).
        assert W.getnnz(axis=1).max() <= k
        assert W.nnz == 0 or W.data.min() >= 0.0
        assert W.nnz == 0 or W.data.max() <= 1.0 + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), r=st.integers(2, 30), k=st.integers(1, 5))
    def test_reference_row_query_hits_itself_with_weight_one(self, seed, r, k):
        X_ref = _data(seed, r)
        W = knn_cross(X_ref[:1], X_ref, n_neighbors=min(k, r))
        assert W[0, 0] == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), q=st.integers(1, 15), r=st.integers(2, 20))
    def test_binary_weights_are_unit(self, seed, q, r):
        W = knn_cross(
            _data(seed, q), _data(seed + 1, r), n_neighbors=min(3, r), binary=True
        )
        assert np.array_equal(np.unique(W.data), [1.0])


class TestLaplacianProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 30), k=st.integers(1, 4))
    def test_psd_zero_row_sum_symmetric(self, seed, n, k):
        W = knn_graph(_data(seed, n), n_neighbors=min(k, n - 1))
        L = laplacian(W)
        dense = L.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        np.testing.assert_allclose(dense.sum(axis=1), 0.0, atol=1e-10)
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() >= -1e-10

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 25))
    def test_normalized_laplacian_psd_with_spectrum_below_two(self, seed, n):
        W = knn_graph(_data(seed, n), n_neighbors=min(3, n - 1))
        L = laplacian(W, normalized=True)
        eigenvalues = np.linalg.eigvalsh(L.toarray())
        assert eigenvalues.min() >= -1e-10
        assert eigenvalues.max() <= 2.0 + 1e-10


class TestCombineLaplaciansProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 25),
        gamma=st.floats(0.0, 1.0),
    )
    def test_linear_in_gamma(self, seed, n, gamma):
        k = min(3, n - 1)
        L_x = laplacian(knn_graph(_data(seed, n), n_neighbors=k))
        L_f = laplacian(knn_graph(_data(seed + 1, n), n_neighbors=k))
        combined = combine_laplacians(L_x, L_f, gamma)
        expected = (1.0 - gamma) * L_x.toarray() + gamma * L_f.toarray()
        np.testing.assert_allclose(combined.toarray(), expected, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 25))
    def test_endpoints_recover_the_inputs(self, seed, n):
        k = min(3, n - 1)
        L_x = laplacian(knn_graph(_data(seed, n), n_neighbors=k))
        L_f = laplacian(knn_graph(_data(seed + 1, n), n_neighbors=k))
        np.testing.assert_allclose(
            combine_laplacians(L_x, L_f, 0.0).toarray(), L_x.toarray(), atol=1e-12
        )
        np.testing.assert_allclose(
            combine_laplacians(L_x, L_f, 1.0).toarray(), L_f.toarray(), atol=1e-12
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(5, 20),
        gamma=st.floats(0.0, 1.0),
    )
    def test_combination_preserves_laplacian_structure(self, seed, n, gamma):
        # A convex combination of Laplacians is itself a Laplacian: PSD
        # with zero row-sums — with or without the degree rescaling.
        k = min(3, n - 1)
        L_x = laplacian(knn_graph(_data(seed, n), n_neighbors=k))
        L_f = laplacian(knn_graph(_data(seed + 1, n), n_neighbors=k))
        for rescale in (False, True):
            dense = combine_laplacians(L_x, L_f, gamma, rescale=rescale).toarray()
            np.testing.assert_allclose(dense.sum(axis=1), 0.0, atol=1e-10)
            assert np.linalg.eigvalsh(dense).min() >= -1e-10
