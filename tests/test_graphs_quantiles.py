"""Tests for repro.graphs.quantiles — Definition 2 machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.graphs import quantile_bucket, within_group_quantiles


class TestQuantileBucket:
    def test_even_split(self):
        buckets = quantile_bucket(np.arange(10, dtype=float), 2)
        np.testing.assert_array_equal(buckets, [0] * 5 + [1] * 5)

    def test_deciles(self):
        buckets = quantile_bucket(np.arange(100, dtype=float), 10)
        counts = np.bincount(buckets, minlength=10)
        np.testing.assert_array_equal(counts, [10] * 10)

    def test_order_invariance(self, rng):
        scores = rng.random(50)
        order = rng.permutation(50)
        b1 = quantile_bucket(scores, 5)
        b2 = quantile_bucket(scores[order], 5)
        np.testing.assert_array_equal(b1[order], b2)

    def test_ties_share_bucket(self):
        scores = np.array([1.0, 1.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        buckets = quantile_bucket(scores, 4)
        assert buckets[0] == buckets[1] == buckets[2]

    def test_monotone_in_score(self, rng):
        scores = rng.random(60)
        buckets = quantile_bucket(scores, 6)
        order = np.argsort(scores)
        assert np.all(np.diff(buckets[order]) >= 0)

    def test_single_bucket(self):
        assert set(quantile_bucket([1.0, 2.0, 3.0], 1)) == {0}

    def test_empty_input(self):
        assert quantile_bucket(np.empty(0), 3).shape == (0,)

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            quantile_bucket([1.0], 0)

    def test_range(self, rng):
        buckets = quantile_bucket(rng.normal(size=37), 10)
        assert buckets.min() >= 0 and buckets.max() <= 9


class TestWithinGroupQuantiles:
    def test_groups_bucketed_independently(self):
        # Group 1's scores are uniformly higher, but within-group bucketing
        # must ignore the between-group shift entirely.
        scores = np.array([1.0, 2.0, 3.0, 4.0, 101.0, 102.0, 103.0, 104.0])
        groups = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        buckets = within_group_quantiles(scores, groups, 2)
        np.testing.assert_array_equal(buckets, [0, 0, 1, 1, 0, 0, 1, 1])

    def test_shift_invariance_per_group(self, rng):
        scores = rng.random(40)
        groups = np.repeat([0, 1], 20)
        shifted = scores + 100.0 * groups
        np.testing.assert_array_equal(
            within_group_quantiles(scores, groups, 4),
            within_group_quantiles(shifted, groups, 4),
        )

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="align"):
            within_group_quantiles([1.0, 2.0], [0], 2)

    def test_multigroup(self, rng):
        scores = rng.random(90)
        groups = np.repeat([0, 1, 2], 30)
        buckets = within_group_quantiles(scores, groups, 3)
        for g in (0, 1, 2):
            counts = np.bincount(buckets[groups == g], minlength=3)
            np.testing.assert_array_equal(counts, [10, 10, 10])


@settings(max_examples=50, deadline=None)
@given(
    scores=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=80
    ),
    n_quantiles=st.integers(1, 10),
)
def test_bucket_range_property(scores, n_quantiles):
    """Buckets always land in [0, q-1] and are monotone in score."""
    buckets = quantile_bucket(np.asarray(scores), n_quantiles)
    assert buckets.min() >= 0
    assert buckets.max() <= n_quantiles - 1
    order = np.argsort(np.asarray(scores), kind="stable")
    sorted_buckets = buckets[order]
    assert np.all(np.diff(sorted_buckets) >= 0)
