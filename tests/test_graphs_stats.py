"""Tests for repro.graphs.stats — diagnostics and networkx interop."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graphs import (
    between_group_quantile_graph,
    from_networkx,
    graph_summary,
    to_networkx,
)


@pytest.fixture
def path_graph():
    W = np.zeros((4, 4))
    W[0, 1] = W[1, 0] = 1.0
    W[1, 2] = W[2, 1] = 2.0
    return W


class TestGraphSummary:
    def test_basic_counts(self, path_graph):
        summary = graph_summary(path_graph)
        assert summary["n_nodes"] == 4
        assert summary["n_edges"] == 2
        assert summary["n_isolated"] == 1
        assert summary["n_components"] == 2  # path of 3 + isolated node
        assert summary["max_degree"] == 2

    def test_density(self, path_graph):
        assert graph_summary(path_graph)["density"] == pytest.approx(2 / 6)

    def test_cross_group_fraction_bipartite(self, quantile_graph_setup):
        scores, groups, W = quantile_graph_setup
        summary = graph_summary(W, groups=groups)
        # a between-group quantile graph has only cross-group edges
        assert summary["cross_group_fraction"] == 1.0

    def test_cross_group_fraction_mixed(self, path_graph):
        summary = graph_summary(path_graph, groups=[0, 0, 1, 1])
        assert summary["cross_group_fraction"] == pytest.approx(0.5)

    def test_cross_group_nan_for_empty_graph(self):
        summary = graph_summary(np.zeros((3, 3)), groups=[0, 1, 0])
        assert np.isnan(summary["cross_group_fraction"])

    def test_groups_length_checked(self, path_graph):
        with pytest.raises(GraphConstructionError, match="entries"):
            graph_summary(path_graph, groups=[0, 1])


class TestNetworkxRoundtrip:
    def test_to_networkx_structure(self, path_graph):
        graph = to_networkx(path_graph)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 2
        assert graph[1][2]["weight"] == 2.0

    def test_node_attributes(self, path_graph):
        graph = to_networkx(path_graph, node_attrs={"group": [0, 0, 1, 1]})
        assert graph.nodes[2]["group"] == 1

    def test_attr_length_checked(self, path_graph):
        with pytest.raises(GraphConstructionError, match="entries"):
            to_networkx(path_graph, node_attrs={"g": [0, 1]})

    def test_roundtrip_preserves_adjacency(self, quantile_graph_setup):
        _, _, W = quantile_graph_setup
        back = from_networkx(to_networkx(W), n_nodes=W.shape[0])
        assert (abs(back - W)).nnz == 0

    def test_from_networkx_default_size(self):
        graph = nx.Graph()
        graph.add_edge(0, 3)
        W = from_networkx(graph)
        assert W.shape == (4, 4)
        assert W[0, 3] == 1.0

    def test_from_networkx_rejects_string_nodes(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(GraphConstructionError, match="integer"):
            from_networkx(graph)

    def test_networkx_analysis_example(self, rng):
        # The advertised use: component structure of a fairness graph.
        scores = rng.random(30)
        groups = np.repeat([0, 1], 15)
        W = between_group_quantile_graph(scores, groups, n_quantiles=3)
        graph = to_networkx(W)
        components = list(nx.connected_components(graph))
        # 3 quantile buckets -> at most 3 non-trivial components
        nontrivial = [c for c in components if len(c) > 1]
        assert 1 <= len(nontrivial) <= 3
