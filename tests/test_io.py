"""Tests for repro.io — pickle-free model persistence."""

import json

import numpy as np
import pytest

from repro import (
    IFair,
    LFR,
    PFR,
    EqualizedOddsPostProcessor,
    MaskedRepresentation,
    SideInformationAugmenter,
    __version__,
    load_model,
    save_model,
)
from repro.core import KernelPFR
from repro.exceptions import ValidationError
from repro.graphs import pairwise_judgment_graph
from repro.io import read_header, supported_model_types
from repro.ml import LogisticRegression, StandardScaler


@pytest.fixture
def fitted_models(rng):
    X = rng.normal(size=(40, 4))
    y = (X[:, 0] > 0).astype(int)
    WF = pairwise_judgment_graph([(0, 1), (5, 9)], n=40)
    return {
        "pfr": PFR(n_components=2, gamma=0.7, n_neighbors=4).fit(X, WF),
        "kpfr": KernelPFR(n_components=2, kernel="rbf", n_neighbors=4).fit(X, WF),
        "lr": LogisticRegression(C=3.0).fit(X, y),
        "scaler": StandardScaler().fit(X),
        "X": X,
    }


class TestRoundtrip:
    def test_pfr(self, fitted_models, tmp_path):
        model = fitted_models["pfr"]
        X = fitted_models["X"]
        path = save_model(model, tmp_path / "pfr")
        restored = load_model(path)
        np.testing.assert_allclose(restored.transform(X), model.transform(X))
        assert restored.gamma == 0.7

    def test_kernel_pfr(self, fitted_models, tmp_path):
        model = fitted_models["kpfr"]
        X = fitted_models["X"]
        path = save_model(model, tmp_path / "kpfr.npz")
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.transform(X), model.transform(X), atol=1e-12
        )

    @pytest.mark.parametrize("key", ["pfr", "kpfr"])
    def test_plan_digests_survive_round_trip(self, fitted_models, tmp_path, key):
        # Provenance digests must survive persistence so that registering a
        # loaded model keeps its fit-plan audit trail.
        model = fitted_models[key]
        restored = load_model(save_model(model, tmp_path / key))
        assert restored.plan_digests_ == model.plan_digests_

    def test_legacy_artifact_without_digests_loads(self, fitted_models, tmp_path):
        model = fitted_models["pfr"]
        digests = model.plan_digests_
        try:
            del model.plan_digests_
            restored = load_model(save_model(model, tmp_path / "old"))
        finally:
            model.plan_digests_ = digests
        assert not hasattr(restored, "plan_digests_")

    def test_logistic_regression(self, fitted_models, tmp_path):
        model = fitted_models["lr"]
        X = fitted_models["X"]
        restored = load_model(save_model(model, tmp_path / "lr"))
        np.testing.assert_allclose(
            restored.predict_proba(X), model.predict_proba(X)
        )
        assert restored.C == 3.0

    def test_standard_scaler(self, fitted_models, tmp_path):
        model = fitted_models["scaler"]
        X = fitted_models["X"]
        restored = load_model(save_model(model, tmp_path / "scaler"))
        np.testing.assert_allclose(restored.transform(X), model.transform(X))

    def test_full_deployment_pair(self, fitted_models, tmp_path):
        """Representation + classifier round-trip: the deployable artifact."""
        X = fitted_models["X"]
        pfr = fitted_models["pfr"]
        Z = pfr.transform(X)
        clf = LogisticRegression().fit(Z, (Z[:, 0] > 0).astype(int))
        p1 = save_model(pfr, tmp_path / "representation")
        p2 = save_model(clf, tmp_path / "classifier")
        predictions = load_model(p2).predict(load_model(p1).transform(X))
        np.testing.assert_array_equal(predictions, clf.predict(Z))

    def test_npz_suffix_added(self, fitted_models, tmp_path):
        path = save_model(fitted_models["scaler"], tmp_path / "m")
        assert path.suffix == ".npz"

    def test_kernel_pfr_linear_kernel_none_bandwidth(self, rng, tmp_path):
        # linear kernels leave _fitted_bandwidth as None — the None-marker
        # round-trip path.
        X = rng.normal(size=(25, 3))
        WF = pairwise_judgment_graph([(0, 1)], n=25)
        model = KernelPFR(n_components=2, kernel="linear").fit(X, WF)
        restored = load_model(save_model(model, tmp_path / "linear"))
        assert restored._fitted_bandwidth is None
        np.testing.assert_allclose(restored.transform(X), model.transform(X))


# Builders for every fitted estimator class exposed in repro.__all__; each
# returns (fitted_model, probe) where probe(model) -> ndarray exercises the
# fitted state so round-trip equality is behavioural, not just structural.
def _build_pfr(rng, X, y, s, WF):
    return PFR(n_components=2, gamma=0.7, n_neighbors=4).fit(X, WF), None


def _build_kernel_pfr(rng, X, y, s, WF):
    return KernelPFR(n_components=2, kernel="rbf", n_neighbors=4).fit(X, WF), None


def _build_ifair(rng, X, y, s, WF):
    model = IFair(n_prototypes=3, max_iter=15, protected_columns=[3]).fit(X)
    return model, None


def _build_lfr(rng, X, y, s, WF):
    return LFR(n_prototypes=3, max_iter=15).fit(X, y, s=s), None


def _build_masked(rng, X, y, s, WF):
    return MaskedRepresentation(protected_columns=[0, 3]).fit(X), None


def _build_augmenter(rng, X, y, s, WF):
    side = rng.random(len(X))
    side[::5] = np.nan
    return SideInformationAugmenter(side_information=side).fit(X), None


def _build_equalized_odds(rng, X, y, s, WF):
    y_pred = (X[:, 0] > 0).astype(int)
    model = EqualizedOddsPostProcessor(seed=3).fit(y, y_pred, s)
    return model, lambda m: m.predict_proba_positive(y_pred, s)


_ALL_ESTIMATOR_BUILDERS = {
    "PFR": _build_pfr,
    "KernelPFR": _build_kernel_pfr,
    "IFair": _build_ifair,
    "LFR": _build_lfr,
    "MaskedRepresentation": _build_masked,
    "SideInformationAugmenter": _build_augmenter,
    "EqualizedOddsPostProcessor": _build_equalized_odds,
}


class TestAllPublicEstimatorsRoundTrip:
    """Every fitted estimator class in repro.__all__ must survive save/load."""

    @pytest.fixture
    def problem(self, rng):
        X = rng.normal(size=(50, 4))
        y = (X[:, 0] + 0.3 * rng.normal(size=50) > 0).astype(int)
        s = rng.integers(0, 2, 50)
        # Both groups need both classes for the Hardt post-processor.
        y[:4], s[:4] = [0, 1, 0, 1], [0, 0, 1, 1]
        WF = pairwise_judgment_graph([(0, 1), (5, 9), (10, 30)], n=50)
        return X, y, s, WF

    @pytest.mark.parametrize("name", sorted(_ALL_ESTIMATOR_BUILDERS))
    def test_round_trip(self, name, problem, rng, tmp_path):
        X, y, s, WF = problem
        model, probe = _ALL_ESTIMATOR_BUILDERS[name](rng, X, y, s, WF)
        restored = load_model(save_model(model, tmp_path / name))
        assert type(restored) is type(model)
        for key, value in model.get_params().items():
            restored_value = restored.get_params()[key]
            if isinstance(value, np.ndarray):
                np.testing.assert_allclose(restored_value, value)
            elif isinstance(value, (list, tuple)):
                assert list(restored_value) == list(value)
            else:
                assert restored_value == value
        if probe is None:
            np.testing.assert_allclose(
                restored.transform(X), model.transform(X), atol=1e-12
            )
        else:
            np.testing.assert_allclose(probe(restored), probe(model))

    def test_every_public_estimator_is_covered(self):
        import repro
        from repro.ml.base import BaseEstimator

        public_estimators = {
            name
            for name in repro.__all__
            if isinstance(getattr(repro, name), type)
            and issubclass(getattr(repro, name), BaseEstimator)
        }
        assert public_estimators == set(_ALL_ESTIMATOR_BUILDERS)
        assert public_estimators <= set(supported_model_types())


def _rewrite_header(path, mutate):
    """Load an artifact, mutate its JSON header, and write it back."""
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}
    header = json.loads(bytes(arrays.pop("header")).decode("utf-8"))
    mutate(header)
    np.savez(path, header=np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    ), **arrays)


class TestVersionStamp:
    @pytest.fixture
    def saved(self, fitted_models, tmp_path):
        return save_model(fitted_models["scaler"], tmp_path / "m")

    def test_header_carries_library_version(self, saved):
        header = read_header(saved)
        assert header["library_version"] == __version__
        assert header["model_type"] == "StandardScaler"
        assert header["format_version"] == 2

    def test_same_major_loads(self, saved):
        major = __version__.split(".", 1)[0]
        _rewrite_header(
            saved, lambda h: h.update(library_version=f"{major}.99.7")
        )
        assert load_model(saved) is not None

    def test_incompatible_major_rejected(self, saved):
        _rewrite_header(saved, lambda h: h.update(library_version="999.0.0"))
        with pytest.raises(ValidationError, match="incompatible"):
            load_model(saved)

    def test_missing_stamp_in_v2_rejected(self, saved):
        _rewrite_header(saved, lambda h: h.pop("library_version"))
        with pytest.raises(ValidationError, match="lacks a library_version"):
            load_model(saved)

    def test_legacy_format1_still_loads(self, saved, fitted_models):
        def to_v1(header):
            header["format_version"] = 1
            header.pop("library_version")

        _rewrite_header(saved, to_v1)
        restored = load_model(saved)
        X = fitted_models["X"]
        np.testing.assert_allclose(
            restored.transform(X), fitted_models["scaler"].transform(X)
        )

    def test_read_header_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            read_header(tmp_path / "none.npz")

    def test_array_params_stay_out_of_the_header(self, rng, tmp_path):
        # Training-set-sized hyper-parameters are stored as npz arrays so
        # read_header stays O(1) in the training-set size.
        X = rng.normal(size=(100, 3))
        model = SideInformationAugmenter(
            side_information=rng.random(100)
        ).fit(X)
        path = save_model(model, tmp_path / "augmenter")
        header = read_header(path)
        assert "side_information" not in header["params"]
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.side_information, model.side_information
        )


class TestErrors:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(Exception):
            save_model(PFR(), tmp_path / "x")

    def test_unsupported_type_rejected(self, tmp_path):
        from repro.ml import MinMaxScaler

        with pytest.raises(ValidationError, match="cannot save"):
            save_model(MinMaxScaler(), tmp_path / "x")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_model(tmp_path / "missing.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValidationError, match="not a repro model"):
            load_model(path)

    def test_non_npz_bytes_rejected(self, tmp_path):
        path = tmp_path / "fake.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValidationError, match="not a repro model"):
            load_model(path)
        with pytest.raises(ValidationError, match="not a repro model"):
            read_header(path)

    def test_bare_npy_payload_rejected(self, tmp_path):
        path = tmp_path / "array.npz"
        with open(path, "wb") as handle:
            np.save(handle, np.arange(3))
        with pytest.raises(ValidationError, match="not an npz archive"):
            load_model(path)
        with pytest.raises(ValidationError, match="not an npz archive"):
            read_header(path)

    def test_non_object_header_rejected(self, tmp_path):
        path = tmp_path / "listheader.npz"
        np.savez(path, header=np.frombuffer(b"[1, 2]", dtype=np.uint8))
        with pytest.raises(ValidationError, match="not a JSON object"):
            load_model(path)

    def test_truncated_zip_rejected(self, tmp_path, fitted_models):
        good = save_model(fitted_models["scaler"], tmp_path / "ok")
        bad = tmp_path / "truncated.npz"
        bad.write_bytes(good.read_bytes()[:40])  # keeps the PK magic
        with pytest.raises(ValidationError, match="not a repro model"):
            load_model(bad)

    def test_missing_required_attribute_rejected(self, tmp_path, fitted_models):
        # Rebuild a valid PFR artifact without its components_ array: the
        # load must fail loudly instead of returning a half-fitted model
        # that only breaks later at transform time. Optional attributes
        # (landmark_indices_, introduced after format v2 shipped) may be
        # absent — that is the backward-compatibility case.
        good = save_model(fitted_models["pfr"], tmp_path / "good")
        with np.load(good) as archive:
            arrays = {
                key: archive[key]
                for key in archive.files
                if key not in ("attr__components_", "header")
            }
            header = archive["header"]
        bad = tmp_path / "gutted.npz"
        np.savez(bad, header=header, **arrays)
        with pytest.raises(ValidationError, match="missing fitted attribute"):
            load_model(bad)

        no_landmarks = tmp_path / "pre_landmark.npz"
        with np.load(good) as archive:
            arrays = {
                key: archive[key]
                for key in archive.files
                if "landmark_indices_" not in key and key != "header"
            }
            header = archive["header"]
        np.savez(no_landmarks, header=header, **arrays)
        loaded = load_model(no_landmarks)
        assert getattr(loaded, "landmark_indices_", None) is None


class TestCrashSafeWrites:
    """save_model must be atomic: a crash mid-write leaves either the old
    artifact or nothing — never a truncated archive."""

    @staticmethod
    def _fitted_scaler(offset=0.0):
        from repro.ml import StandardScaler

        rng = np.random.default_rng(0)
        return StandardScaler().fit(rng.normal(size=(20, 3)) + offset)

    def test_failure_before_rename_leaves_nothing(self, tmp_path, monkeypatch):
        import repro.io as io_mod

        target = tmp_path / "model.npz"
        monkeypatch.setattr(
            io_mod.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(
                OSError("simulated crash mid-write")
            ),
        )
        with pytest.raises(OSError, match="simulated"):
            save_model(self._fitted_scaler(), target)
        monkeypatch.undo()
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # temp file cleaned up

    def test_failure_preserves_previous_artifact(self, tmp_path, monkeypatch):
        import repro.io as io_mod

        target = tmp_path / "model.npz"
        save_model(self._fitted_scaler(offset=0.0), target)
        before = load_model(target).mean_.copy()

        monkeypatch.setattr(
            io_mod.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            save_model(self._fitted_scaler(offset=5.0), target)
        monkeypatch.undo()
        # The original artifact is intact and still loads cleanly.
        np.testing.assert_array_equal(load_model(target).mean_, before)

    def test_artifact_honors_umask(self, tmp_path):
        """atomic_write must not leave artifacts with mkstemp's 0600 —
        shared ledgers/registries need group/other read under the umask."""
        import os as _os
        import stat

        target = tmp_path / "model.npz"
        save_model(self._fitted_scaler(), target)
        umask = _os.umask(0)
        _os.umask(umask)
        expected = 0o666 & ~umask
        assert stat.S_IMODE(target.stat().st_mode) == expected

    def test_savez_failure_cleans_temp(self, tmp_path, monkeypatch):
        import repro.io as io_mod

        def exploding_savez(file, **arrays):
            file.write(b"partial garbage")
            raise RuntimeError("disk full")

        monkeypatch.setattr(io_mod.np, "savez", exploding_savez)
        with pytest.raises(RuntimeError, match="disk full"):
            save_model(self._fitted_scaler(), tmp_path / "model.npz")
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []

    def test_registry_register_is_crash_safe(self, tmp_path, monkeypatch):
        """A crashed register leaves no artifact AND no manifest entry."""
        import repro.io as io_mod
        from repro.serving import ModelRegistry

        registry = ModelRegistry(tmp_path / "registry")
        registry.register("scaler", self._fitted_scaler())

        monkeypatch.setattr(
            io_mod.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            registry.register("scaler", self._fitted_scaler(offset=1.0))
        monkeypatch.undo()
        # Version 2 was never recorded; v1 still resolves and loads.
        records = ModelRegistry(tmp_path / "registry").versions("scaler")
        assert [r.version for r in records] == [1]
        assert load_model(records[0].path) is not None
        model_dir = tmp_path / "registry" / "scaler"
        assert not (model_dir / "v0002.npz").exists()
        assert list(model_dir.glob("*.tmp")) == []
