"""Tests for repro.io — pickle-free model persistence."""

import numpy as np
import pytest

from repro import PFR, load_model, save_model
from repro.core import KernelPFR
from repro.exceptions import ValidationError
from repro.graphs import pairwise_judgment_graph
from repro.ml import LogisticRegression, StandardScaler


@pytest.fixture
def fitted_models(rng):
    X = rng.normal(size=(40, 4))
    y = (X[:, 0] > 0).astype(int)
    WF = pairwise_judgment_graph([(0, 1), (5, 9)], n=40)
    return {
        "pfr": PFR(n_components=2, gamma=0.7, n_neighbors=4).fit(X, WF),
        "kpfr": KernelPFR(n_components=2, kernel="rbf", n_neighbors=4).fit(X, WF),
        "lr": LogisticRegression(C=3.0).fit(X, y),
        "scaler": StandardScaler().fit(X),
        "X": X,
    }


class TestRoundtrip:
    def test_pfr(self, fitted_models, tmp_path):
        model = fitted_models["pfr"]
        X = fitted_models["X"]
        path = save_model(model, tmp_path / "pfr")
        restored = load_model(path)
        np.testing.assert_allclose(restored.transform(X), model.transform(X))
        assert restored.gamma == 0.7

    def test_kernel_pfr(self, fitted_models, tmp_path):
        model = fitted_models["kpfr"]
        X = fitted_models["X"]
        path = save_model(model, tmp_path / "kpfr.npz")
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.transform(X), model.transform(X), atol=1e-12
        )

    def test_logistic_regression(self, fitted_models, tmp_path):
        model = fitted_models["lr"]
        X = fitted_models["X"]
        restored = load_model(save_model(model, tmp_path / "lr"))
        np.testing.assert_allclose(
            restored.predict_proba(X), model.predict_proba(X)
        )
        assert restored.C == 3.0

    def test_standard_scaler(self, fitted_models, tmp_path):
        model = fitted_models["scaler"]
        X = fitted_models["X"]
        restored = load_model(save_model(model, tmp_path / "scaler"))
        np.testing.assert_allclose(restored.transform(X), model.transform(X))

    def test_full_deployment_pair(self, fitted_models, tmp_path):
        """Representation + classifier round-trip: the deployable artifact."""
        X = fitted_models["X"]
        pfr = fitted_models["pfr"]
        Z = pfr.transform(X)
        clf = LogisticRegression().fit(Z, (Z[:, 0] > 0).astype(int))
        p1 = save_model(pfr, tmp_path / "representation")
        p2 = save_model(clf, tmp_path / "classifier")
        predictions = load_model(p2).predict(load_model(p1).transform(X))
        np.testing.assert_array_equal(predictions, clf.predict(Z))

    def test_npz_suffix_added(self, fitted_models, tmp_path):
        path = save_model(fitted_models["scaler"], tmp_path / "m")
        assert path.suffix == ".npz"

    def test_kernel_pfr_linear_kernel_none_bandwidth(self, rng, tmp_path):
        # linear kernels leave _fitted_bandwidth as None — the None-marker
        # round-trip path.
        X = rng.normal(size=(25, 3))
        WF = pairwise_judgment_graph([(0, 1)], n=25)
        model = KernelPFR(n_components=2, kernel="linear").fit(X, WF)
        restored = load_model(save_model(model, tmp_path / "linear"))
        assert restored._fitted_bandwidth is None
        np.testing.assert_allclose(restored.transform(X), model.transform(X))


class TestErrors:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(Exception):
            save_model(PFR(), tmp_path / "x")

    def test_unsupported_type_rejected(self, tmp_path):
        from repro.baselines import IFair

        with pytest.raises(ValidationError, match="cannot save"):
            save_model(IFair(), tmp_path / "x")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_model(tmp_path / "missing.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValidationError, match="not a repro model"):
            load_model(path)
