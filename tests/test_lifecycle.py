"""Tests for repro.lifecycle — drift detection and auto re-promotion.

The loop under test: served/streamed rows are scored against the
fit-time fidelity baseline (DriftMonitor), a RefreshPolicy decides when
the staleness warrants a warm-start refit, and LifecycleController
drives refresh → ledger (parent-linked entry) → registry (promoted
version), rolling back to the previous version when the refreshed model
regresses on an in-distribution holdout.
"""

import numpy as np
import pytest

from repro import PFR
from repro.core import LandmarkPlan
from repro.exceptions import ValidationError
from repro.graphs import knn_graph
from repro.lifecycle import (
    DriftMonitor,
    LifecycleController,
    RefreshPolicy,
    holdout_agreement,
    scorer_for,
)
from repro.obs.metrics import MetricsRegistry
from repro.serving import ModelRegistry
from repro.store import RunLedger


@pytest.fixture
def fitted_setup(rng):
    X = rng.normal(size=(300, 6))
    w_fair = knn_graph(X, n_neighbors=8)
    estimator = PFR(
        n_components=3, gamma=0.5, extension="nystrom", landmarks=80
    )
    plan = LandmarkPlan.for_estimator(estimator, X, w_fair)
    plan.fit(estimator)
    return plan, estimator, X


def _controller(plan, estimator, tmp_path, **kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    kwargs.setdefault("policy", RefreshPolicy(stale_fraction=0.5, min_rows=32))
    return LifecycleController(
        plan,
        estimator,
        registry=ModelRegistry(tmp_path / "registry"),
        name="pfr-live",
        ledger=RunLedger(tmp_path / "ledger"),
        **kwargs,
    )


class TestDriftMonitor:
    def test_snapshot_tracks_window_and_floor(self):
        monitor = DriftMonitor(window=4, floor=0.5, metrics=MetricsRegistry())
        monitor.observe([0.9, 0.8])
        monitor.observe([0.2, 0.1, 0.05])  # evicts 0.9
        snap = monitor.snapshot()
        assert snap["count"] == 4 and snap["total"] == 5
        assert snap["drift_fraction"] == pytest.approx(0.75)

    def test_empty_snapshot_is_json_safe(self):
        snap = DriftMonitor(metrics=MetricsRegistry()).snapshot()
        assert snap["count"] == 0 and snap["drift_fraction"] == 0.0

    def test_floor_defaults_to_baseline_p05(self):
        monitor = DriftMonitor(
            baseline={"p05": 0.7}, metrics=MetricsRegistry()
        )
        assert monitor.floor == pytest.approx(0.7)

    def test_rebase_resets_window_against_new_floor(self):
        monitor = DriftMonitor(floor=0.5, metrics=MetricsRegistry())
        monitor.observe([0.1, 0.2])
        monitor.rebase({"p05": 0.3})
        snap = monitor.snapshot()
        assert snap["count"] == 0 and snap["floor"] == pytest.approx(0.3)

    def test_observations_mirror_into_metrics(self):
        metrics = MetricsRegistry()
        monitor = DriftMonitor(floor=0.5, metrics=metrics, name="m")
        monitor.observe([0.9, 0.1])
        assert metrics.gauge_value(
            "lifecycle.drift_fraction", model="m"
        ) == pytest.approx(0.5)
        assert metrics.histogram_summary(
            "lifecycle.fidelity", model="m"
        )["count"] == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValidationError, match="window"):
            DriftMonitor(window=0, metrics=MetricsRegistry())


class TestRefreshPolicy:
    def test_all_three_gates(self):
        policy = RefreshPolicy(
            stale_fraction=0.5, min_rows=10, min_interval=60.0
        )
        calm = {"count": 100, "drift_fraction": 0.1}
        drifted = {"count": 100, "drift_fraction": 0.9}
        thin = {"count": 5, "drift_fraction": 1.0}
        assert policy.should_refresh(drifted)
        assert not policy.should_refresh(calm)
        assert not policy.should_refresh(thin)
        # Hysteresis: a refresh 10 s ago blocks; one 120 s ago does not.
        assert not policy.should_refresh(drifted, now=100.0, last_refresh=90.0)
        assert policy.should_refresh(drifted, now=100.0, last_refresh=-20.0)

    @pytest.mark.parametrize(
        "kwargs", [
            {"stale_fraction": 0.0},
            {"stale_fraction": 1.5},
            {"min_interval": -1.0},
            {"min_rows": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValidationError):
            RefreshPolicy(**kwargs)


class TestScorerFor:
    def test_discriminates_drift_on_landmark_pfr(self, fitted_setup):
        _, estimator, X = fitted_setup
        score = scorer_for(estimator)
        assert score is not None
        in_dist = score(X[:50])
        far = score(X[:50] + 6.0)
        assert in_dist.shape == (50,)
        assert float(np.mean(in_dist)) > float(np.mean(far)) + 0.2

    def test_precomputed_embedding_matches_transform(self, fitted_setup):
        _, estimator, X = fitted_setup
        score = scorer_for(estimator)
        rows = X[:10]
        np.testing.assert_allclose(
            score(rows), score(rows, estimator.transform(rows)), atol=1e-12
        )

    def test_exact_fit_has_no_scorer(self, rng):
        X = rng.normal(size=(60, 4))
        model = PFR(n_components=2).fit(X, knn_graph(X, n_neighbors=5))
        assert scorer_for(model) is None


class TestHoldoutAgreement:
    def test_mean_of_score_rows(self, fitted_setup):
        plan, _, X = fitted_setup
        value = holdout_agreement(plan, X[:40])
        np.testing.assert_allclose(
            value, float(np.mean(plan.score_rows(X[:40])))
        )

    def test_rejects_empty_holdout(self, fitted_setup):
        plan, _, _ = fitted_setup
        with pytest.raises(ValidationError, match="holdout"):
            holdout_agreement(plan, np.empty((0, 6)))


class TestLifecycleController:
    def test_requires_fitted_landmark_plan(self, fitted_setup, tmp_path):
        plan, estimator, X = fitted_setup
        unfitted = LandmarkPlan.for_estimator(
            PFR(n_components=3, gamma=0.5, extension="nystrom", landmarks=80),
            X,
            knn_graph(X, n_neighbors=8),
        )
        with pytest.raises(ValidationError, match="fitted plan"):
            _controller(unfitted, estimator, tmp_path)
        with pytest.raises(ValidationError, match="LandmarkPlan"):
            _controller(object(), estimator, tmp_path)

    def test_ensure_registered_is_idempotent(self, fitted_setup, tmp_path):
        plan, estimator, _ = fitted_setup
        controller = _controller(plan, estimator, tmp_path)
        assert controller.ensure_registered()["version"] == 1
        assert controller.ensure_registered()["version"] == 1
        assert len(controller.registry.versions("pfr-live")) == 1

    def test_in_distribution_traffic_never_refreshes(
        self, fitted_setup, tmp_path, rng
    ):
        plan, estimator, X = fitted_setup
        controller = _controller(plan, estimator, tmp_path)
        controller.ensure_registered()
        for _ in range(3):
            event = controller.ingest(
                X[rng.integers(0, X.shape[0], size=40)]
            )
            assert event["refresh"] is None
        assert controller.status()["refreshes"] == 0

    def test_drift_triggers_refresh_and_promotion(
        self, fitted_setup, tmp_path, rng
    ):
        plan, estimator, X = fitted_setup
        controller = _controller(plan, estimator, tmp_path)
        controller.ensure_registered()
        event = None
        for _ in range(5):
            event = controller.ingest(
                X[rng.integers(0, X.shape[0], size=40)] + 6.0
            )
            if event["refresh"] is not None:
                break
        refresh = event["refresh"]
        assert refresh is not None and not refresh["rolled_back"]
        assert refresh["version"] == 2
        # The registry now serves the refreshed version...
        record = controller.registry.record("pfr-live")
        assert record.version == 2 and record.is_latest
        assert "extend" in record.stage_digests
        # ...and the ledger links child to parent.
        entries = controller.ledger.ls(kind="lifecycle_model")
        child = [e for e in entries if e.parent is not None]
        assert len(child) == 1
        assert len(controller.ledger.lineage(child[0].digest)) == 2
        # The controller hot-swapped to the child plan and rebased.
        assert controller.plan.parent is plan
        assert controller.monitor.snapshot()["count"] == 0

    def test_forced_refresh_needs_pending_rows(self, fitted_setup, tmp_path):
        plan, estimator, _ = fitted_setup
        controller = _controller(plan, estimator, tmp_path)
        with pytest.raises(ValidationError, match="pending rows"):
            controller.refresh()

    def test_holdout_regression_rolls_back(self, fitted_setup, tmp_path, rng):
        plan, estimator, X = fitted_setup
        controller = _controller(
            plan,
            estimator,
            tmp_path,
            holdout=X[rng.choice(X.shape[0], 80, replace=False)],
            holdout_tolerance=0.0,
        )
        controller.ensure_registered()
        # An extreme shift: the refreshed landmark set serves the
        # in-distribution holdout worse, so the refresh must roll back.
        controller.ingest(
            X[rng.integers(0, X.shape[0], size=60)] + 50.0
        )
        event = controller.refresh() if not controller.history else (
            controller.history[-1]
        )
        assert event["rolled_back"]
        assert event["holdout_child"] < event["holdout_parent"]
        # @latest still points at version 1; the regressed version stays
        # on disk for audit.
        record = controller.registry.record("pfr-live")
        assert record.version == 1 and record.is_latest
        assert len(controller.registry.versions("pfr-live")) == 2
        # The parent plan stays live.
        assert controller.plan is plan
        assert controller.status()["rollbacks"] == 1

    def test_status_is_json_serialisable(self, fitted_setup, tmp_path):
        import json

        plan, estimator, _ = fitted_setup
        controller = _controller(plan, estimator, tmp_path)
        controller.ensure_registered()
        status = controller.status()
        assert status["serving"]["version"] == 1
        assert status["pending"] == 0
        json.dumps(status)  # must not raise
