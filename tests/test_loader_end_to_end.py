"""End-to-end integration over the real-file path.

Synthesizes ProPublica- and UCI-shaped files on disk, loads them with the
real loaders, and runs the full experiment harness on the result — the
exact code path a user with the genuine datasets exercises.
"""

import dataclasses

import numpy as np
import pytest

from repro.datasets import load_compas, load_crime, simulate_star_ratings
from repro.experiments import ExperimentHarness


@pytest.fixture(scope="module")
def compas_csv(tmp_path_factory):
    """A 400-row ProPublica-schema CSV with realistic correlations."""
    rng = np.random.default_rng(0)
    rows = [
        "sex,age,race,juv_fel_count,juv_misd_count,juv_other_count,"
        "priors_count,c_charge_degree,days_b_screening_arrest,is_recid,"
        "decile_score,two_year_recid,c_jail_in,c_jail_out"
    ]
    for i in range(400):
        race = "African-American" if rng.random() < 0.5 else "Caucasian"
        behaviour = rng.normal()
        age = int(np.clip(38 - 6 * behaviour + rng.normal(0, 9), 18, 70))
        priors = int(np.floor(np.exp(np.clip(0.5 + 0.8 * behaviour
                                             + rng.normal(0, 0.5), None, 3.0))))
        decile = int(np.clip(round(5.5 + 2.5 * behaviour + rng.normal(0, 1)),
                             1, 10))
        recid = int(rng.random() < 1 / (1 + np.exp(-behaviour)))
        stay = max(1, int(np.exp(1.0 + 0.3 * behaviour + rng.normal(0, 0.8))))
        rows.append(
            f"{'Male' if rng.random() < 0.8 else 'Female'},{age},{race},"
            f"{int(rng.random() < 0.05)},{int(rng.random() < 0.08)},"
            f"{int(rng.random() < 0.1)},{priors},"
            f"{'F' if rng.random() < 0.6 else 'M'},0,{recid},{decile},{recid},"
            f"2013-01-01 08:00:00,2013-01-{min(stay + 1, 28):02d} 08:00:00"
        )
    path = tmp_path_factory.mktemp("real") / "compas-scores-two-years.csv"
    path.write_text("\n".join(rows) + "\n")
    return path


@pytest.fixture(scope="module")
def crime_data_file(tmp_path_factory):
    """A 250-row UCI-schema communities.data with a violence factor."""
    rng = np.random.default_rng(1)
    lines = []
    for i in range(250):
        z = rng.normal()
        predictive = rng.random(122)
        predictive[3] = np.clip(0.6 + 0.3 * z + rng.normal(0, 0.2), 0, 1)
        target = np.clip(0.4 - 0.25 * z + rng.normal(0, 0.1), 0, 1)
        fields = (
            ["1", "1", "1", f"community{i}", "1"]
            + [f"{v:.4f}" for v in predictive]
            + [f"{target:.4f}"]
        )
        lines.append(",".join(fields))
    path = tmp_path_factory.mktemp("real") / "communities.data"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestCompasRealPath:
    def test_loader_to_harness_to_results(self, compas_csv):
        data = load_compas(compas_csv)
        assert data.n_samples == 400
        harness = ExperimentHarness(data, seed=0, n_components=3)
        results = harness.run_methods(("original+", "pfr"), gamma=1.0)
        for result in results.values():
            assert 0.0 <= result.auc <= 1.0
            assert 0.0 <= result.consistency_wf <= 1.0

    def test_decile_fairness_graph_is_cross_group(self, compas_csv):
        data = load_compas(compas_csv)
        harness = ExperimentHarness(data, seed=0, n_components=3).prepare()
        rows, cols = harness.W_fair_full.nonzero()
        assert np.all(data.s[rows] != data.s[cols])

    def test_loaded_deciles_predict_recidivism(self, compas_csv):
        data = load_compas(compas_csv)
        correlation = np.corrcoef(data.side_information, data.y)[0, 1]
        assert correlation > 0.3


class TestCrimeRealPath:
    def test_loader_with_attached_ratings_through_harness(self, crime_data_file):
        data = load_crime(crime_data_file)
        # The UCI file carries no review data; attach simulated ratings the
        # way the documentation prescribes.
        ratings, _ = simulate_star_ratings(
            -np.asarray(data.y, dtype=float),  # safer communities rate higher
            data.s,
            coverage=0.8,
            seed=0,
        )
        with_ratings = dataclasses.replace(
            data,
            side_information=ratings,
            side_information_name="attached simulated ratings",
        )
        harness = ExperimentHarness(with_ratings, seed=0, n_components=2)
        result = harness.run_method("pfr", gamma=1.0)
        assert np.isfinite(result.auc)
        assert result.consistency_wf > 0.0

    def test_loaded_crime_shapes(self, crime_data_file):
        data = load_crime(crime_data_file)
        assert data.n_samples == 250
        assert data.X.shape[1] == 123
        assert 0.3 < data.y.mean() < 0.7  # median split
