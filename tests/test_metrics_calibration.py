"""Tests for per-group calibration metrics."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics import calibration_by_group, calibration_gap


@pytest.fixture
def perfectly_calibrated(rng):
    """Scores that are exactly the conditional positive probability, for
    both groups."""
    n = 20000
    s = rng.integers(0, 2, n)
    scores = rng.random(n)
    y = (rng.random(n) < scores).astype(int)
    return y, scores, s


class TestCalibrationByGroup:
    def test_structure(self, perfectly_calibrated):
        y, scores, s = perfectly_calibrated
        curves = calibration_by_group(y, scores, s, n_bins=5)
        assert set(curves) == {0, 1}
        for curve in curves.values():
            assert curve["bin_center"].shape == (5,)
            assert curve["observed_rate"].shape == (5,)
            assert curve["count"].sum() > 0

    def test_calibrated_scores_track_bin_centers(self, perfectly_calibrated):
        y, scores, s = perfectly_calibrated
        curves = calibration_by_group(y, scores, s, n_bins=5)
        for curve in curves.values():
            np.testing.assert_allclose(
                curve["observed_rate"], curve["bin_center"], atol=0.05
            )

    def test_counts_partition_group(self, perfectly_calibrated):
        y, scores, s = perfectly_calibrated
        curves = calibration_by_group(y, scores, s, n_bins=10)
        for value, curve in curves.items():
            assert curve["count"].sum() == int(np.sum(s == value))

    def test_empty_bin_is_nan(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.05, 0.05, 0.06, 0.07])  # everything in bin 0
        s = np.array([0, 0, 1, 1])
        curves = calibration_by_group(y, scores, s, n_bins=10)
        assert np.isnan(curves[0]["observed_rate"][5])

    def test_score_range_validated(self):
        with pytest.raises(ValidationError, match="probabilities"):
            calibration_by_group([0, 1], [0.5, 1.5], [0, 1])

    def test_n_bins_validated(self):
        with pytest.raises(ValidationError, match="n_bins"):
            calibration_by_group([0, 1], [0.5, 0.5], [0, 1], n_bins=1)


class TestCalibrationGap:
    def test_near_zero_for_calibrated_scores(self, perfectly_calibrated):
        y, scores, s = perfectly_calibrated
        assert calibration_gap(y, scores, s, n_bins=5) < 0.1

    def test_detects_group_miscalibration(self, rng):
        # Same score distribution, but for group 1 the true rate is shifted
        # +0.3 at every score level — a within-group-normed score.
        n = 20000
        s = rng.integers(0, 2, n)
        scores = rng.uniform(0.05, 0.65, n)
        true_rate = np.clip(scores + 0.3 * s, 0, 1)
        y = (rng.random(n) < true_rate).astype(int)
        gap = calibration_gap(y, scores, s, n_bins=5)
        assert gap > 0.2

    def test_nan_when_no_shared_bins(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.1, 0.9, 0.9])
        s = np.array([0, 0, 1, 1])
        assert np.isnan(calibration_gap(y, scores, s, n_bins=2)) or (
            calibration_gap(y, scores, s, n_bins=2) >= 0
        )

    def test_compas_deciles_are_miscalibrated_across_groups(self):
        # The simulator's within-group-normed deciles must carry different
        # rearrest rates per group at the same decile — ProPublica's core
        # observation, and the premise behind the paper's §4.3.1 warning.
        from repro.datasets import simulate_compas

        data = simulate_compas(2000, 2000, seed=0)
        decile_scores = (data.side_information - 1.0) / 9.0
        gap = calibration_gap(data.y, decile_scores, data.s, n_bins=10)
        assert gap > 0.05
