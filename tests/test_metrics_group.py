"""Tests for repro.metrics.group — group-fairness measures."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics import (
    accuracy_by_group,
    demographic_parity_gap,
    equalized_odds_gap,
    group_auc,
    group_rates,
)

Y_TRUE = np.array([1, 0, 1, 0, 1, 0, 1, 0])
Y_PRED = np.array([1, 1, 1, 0, 0, 0, 1, 1])
S = np.array([0, 0, 0, 0, 1, 1, 1, 1])
# group 0: true (1,0,1,0) pred (1,1,1,0): P=0.75, FPR=0.5, FNR=0
# group 1: true (1,0,1,0) pred (0,0,1,1): P=0.5,  FPR=0.5, FNR=0.5


class TestGroupRates:
    def test_positive_rates(self):
        rates = group_rates(Y_TRUE, Y_PRED, S)
        assert rates.positive_rate[0] == pytest.approx(0.75)
        assert rates.positive_rate[1] == pytest.approx(0.5)

    def test_error_rates(self):
        rates = group_rates(Y_TRUE, Y_PRED, S)
        assert rates.fpr[0] == pytest.approx(0.5)
        assert rates.fnr[0] == pytest.approx(0.0)
        assert rates.fpr[1] == pytest.approx(0.5)
        assert rates.fnr[1] == pytest.approx(0.5)

    def test_counts(self):
        rates = group_rates(Y_TRUE, Y_PRED, S)
        assert rates.counts == {0: 4, 1: 4}

    def test_gap(self):
        rates = group_rates(Y_TRUE, Y_PRED, S)
        assert rates.gap("positive_rate") == pytest.approx(0.25)
        assert rates.gap("fpr") == pytest.approx(0.0)
        assert rates.gap("fnr") == pytest.approx(0.5)

    def test_gap_invalid_measure(self):
        rates = group_rates(Y_TRUE, Y_PRED, S)
        with pytest.raises(ValidationError, match="measure"):
            rates.gap("accuracy")

    def test_multigroup(self):
        s3 = np.array([0, 0, 1, 1, 2, 2, 0, 1])
        rates = group_rates(Y_TRUE, Y_PRED, s3)
        assert set(rates.groups) == {0, 1, 2}

    def test_single_group_rejected(self):
        with pytest.raises(ValidationError, match="two groups"):
            group_rates(Y_TRUE, Y_PRED, np.zeros(8))


class TestGaps:
    def test_parity_gap(self):
        assert demographic_parity_gap(Y_PRED, S) == pytest.approx(0.25)

    def test_parity_gap_zero_when_equal(self):
        assert demographic_parity_gap([1, 0, 1, 0], [0, 0, 1, 1]) == 0.0

    def test_odds_gap_is_max_of_rate_gaps(self):
        assert equalized_odds_gap(Y_TRUE, Y_PRED, S) == pytest.approx(0.5)

    def test_parity_needs_two_groups(self):
        with pytest.raises(ValidationError):
            demographic_parity_gap(Y_PRED, np.ones(8))


class TestGroupAuc:
    def test_keys(self, rng):
        y = rng.integers(0, 2, 100)
        y[:4] = [0, 1, 0, 1]
        scores = rng.random(100)
        s = np.repeat([0, 1], 50)
        out = group_auc(y, scores, s)
        assert set(out) == {0, 1, "any"}

    def test_perfect_scores(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.1, 0.9, 0.2, 0.8])
        s = np.array([0, 0, 1, 1])
        out = group_auc(y, scores, s)
        assert out[0] == 1.0 and out[1] == 1.0 and out["any"] == 1.0

    def test_single_class_group_is_nan(self):
        y = np.array([1, 1, 0, 1])
        scores = np.array([0.6, 0.7, 0.1, 0.9])
        s = np.array([0, 0, 1, 1])
        out = group_auc(y, scores, s)
        assert np.isnan(out[0])
        assert not np.isnan(out["any"])


class TestAccuracyByGroup:
    def test_values(self):
        out = accuracy_by_group(Y_TRUE, Y_PRED, S)
        assert out[0] == pytest.approx(0.75)
        assert out[1] == pytest.approx(0.5)
