"""Tests for repro.metrics.individual — the consistency measure."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.metrics import consistency, restrict_graph


def graph(*edges, n):
    W = np.zeros((n, n))
    for i, j, w in edges:
        W[i, j] = W[j, i] = w
    return W


class TestConsistency:
    def test_perfect_agreement(self):
        W = graph((0, 1, 1.0), (1, 2, 1.0), n=3)
        assert consistency([1, 1, 1], W) == 1.0

    def test_total_disagreement(self):
        W = graph((0, 1, 1.0), n=2)
        assert consistency([0, 1], W) == 0.0

    def test_hand_computed_mixed_case(self):
        # edges: (0,1) w=1 agree, (1,2) w=1 disagree -> 1 - 1/2
        W = graph((0, 1, 1.0), (1, 2, 1.0), n=3)
        assert consistency([0, 0, 1], W) == pytest.approx(0.5)

    def test_weighted_edges(self):
        # disagreement on the heavy edge counts more
        W = graph((0, 1, 3.0), (1, 2, 1.0), n=3)
        assert consistency([0, 1, 1], W) == pytest.approx(1 - 3 / 4)

    def test_soft_predictions(self):
        W = graph((0, 1, 1.0), n=2)
        assert consistency([0.25, 0.75], W) == pytest.approx(0.5)

    def test_empty_graph_is_one(self):
        assert consistency([0, 1, 0], np.zeros((3, 3))) == 1.0

    def test_diagonal_ignored(self):
        W = graph((0, 1, 1.0), n=2)
        W[0, 0] = 5.0
        W[1, 1] = 5.0
        assert consistency([0, 1], W) == 0.0

    def test_sparse_and_dense_agree(self, rng):
        W = rng.random((10, 10))
        W = 0.5 * (W + W.T)
        np.fill_diagonal(W, 0.0)
        y = rng.integers(0, 2, 10)
        assert consistency(y, W) == pytest.approx(
            consistency(y, sp.csr_matrix(W))
        )

    def test_out_of_range_predictions_rejected(self):
        W = graph((0, 1, 1.0), n=2)
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            consistency([0.0, 1.5], W)

    def test_size_mismatch(self):
        with pytest.raises(ValidationError, match="nodes"):
            consistency([0, 1], np.zeros((3, 3)))

    def test_negative_weights_rejected(self):
        W = graph((0, 1, -1.0), n=2)
        with pytest.raises(ValidationError, match="non-negative"):
            consistency([0, 1], W)


class TestRestrictGraph:
    def test_extracts_block(self):
        W = graph((0, 1, 1.0), (2, 3, 1.0), (0, 3, 1.0), n=4)
        sub = restrict_graph(W, [0, 3]).toarray()
        np.testing.assert_allclose(sub, [[0.0, 1.0], [1.0, 0.0]])

    def test_preserves_sparsity(self, rng):
        W = sp.random(50, 50, density=0.05, random_state=0)
        W = W + W.T
        sub = restrict_graph(W, np.arange(10))
        assert sp.issparse(sub)
        assert sub.shape == (10, 10)

    def test_empty_indices(self):
        sub = restrict_graph(np.zeros((4, 4)), [])
        assert sub.shape == (0, 0)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            restrict_graph(np.zeros((3, 3)), [5])

    def test_2d_indices_rejected(self):
        with pytest.raises(ValidationError, match="1-D"):
            restrict_graph(np.zeros((3, 3)), [[0, 1]])


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 25),
)
def test_consistency_bounds_property(seed, n):
    """Consistency is always in [0, 1] for any graph and predictions."""
    rng = np.random.default_rng(seed)
    W = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
    W = 0.5 * (W + W.T)
    np.fill_diagonal(W, 0.0)
    y = rng.integers(0, 2, n)
    value = consistency(y, W)
    assert 0.0 <= value <= 1.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_consistency_complement_property(seed):
    """Flipping all binary predictions leaves consistency unchanged."""
    rng = np.random.default_rng(seed)
    n = 12
    W = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    W = 0.5 * (W + W.T)
    np.fill_diagonal(W, 0.0)
    y = rng.integers(0, 2, n)
    assert consistency(y, W) == pytest.approx(consistency(1 - y, W))
