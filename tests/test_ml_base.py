"""Tests for repro.ml.base — estimator protocol, params, cloning."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import (
    BaseEstimator,
    LogisticRegression,
    Pipeline,
    StandardScaler,
    clone,
)


class Toy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x", values=None):
        self.alpha = alpha
        self.beta = beta
        self.values = values


class TestGetSetParams:
    def test_get_params_reflects_init(self):
        params = Toy(alpha=2.5, beta="y").get_params()
        assert params == {"alpha": 2.5, "beta": "y", "values": None}

    def test_set_params_roundtrip(self):
        toy = Toy().set_params(alpha=9.0)
        assert toy.alpha == 9.0

    def test_set_params_returns_self(self):
        toy = Toy()
        assert toy.set_params(alpha=1.0) is toy

    def test_set_unknown_param_raises(self):
        with pytest.raises(ValidationError, match="invalid parameter"):
            Toy().set_params(gamma=1)

    def test_repr_contains_params(self):
        assert "alpha=3" in repr(Toy(alpha=3))


class TestClone:
    def test_clone_copies_params(self):
        toy = Toy(alpha=7.0, values=[1, 2])
        copy = clone(toy)
        assert copy.alpha == 7.0
        assert copy is not toy

    def test_clone_deep_copies_mutables(self):
        toy = Toy(values=[1, 2])
        copy = clone(toy)
        copy.values.append(3)
        assert toy.values == [1, 2]

    def test_clone_drops_fitted_state(self):
        lr = LogisticRegression()
        lr.fit(np.array([[0.0], [1.0], [2.0], [3.0]]), np.array([0, 0, 1, 1]))
        copy = clone(lr)
        assert not hasattr(copy, "coef_")

    def test_clone_rejects_non_estimator(self):
        with pytest.raises(ValidationError):
            clone(object())

    def test_clone_pipeline_clones_steps(self):
        pipe = Pipeline(
            steps=[("scale", StandardScaler()), ("clf", LogisticRegression(C=3.0))]
        )
        copy = clone(pipe)
        assert copy.steps[1][1].C == 3.0
        assert copy.steps[0][1] is not pipe.steps[0][1]


class TestMixins:
    def test_fit_transform_equals_fit_then_transform(self, small_X):
        a = StandardScaler().fit_transform(small_X)
        b = StandardScaler().fit(small_X).transform(small_X)
        np.testing.assert_allclose(a, b)

    def test_classifier_score_is_accuracy(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression().fit(X, y)
        expected = float(np.mean(model.predict(X) == y))
        assert model.score(X, y) == pytest.approx(expected)

    def test_input_dim_after_fit(self, small_X):
        scaler = StandardScaler().fit(small_X)
        assert scaler.input_dim == small_X.shape[1]

    def test_input_dim_before_fit_raises(self):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError, match="input_dim"):
            StandardScaler().input_dim
