"""Tests for repro.ml.calibration — Platt scaling."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import calibration_gap
from repro.ml import (
    CalibratedClassifier,
    LogisticRegression,
    PlattCalibrator,
    brier_score,
    roc_auc_score,
)


@pytest.fixture
def miscalibrated_scores(rng):
    """Scores that rank perfectly but sit on the wrong scale."""
    n = 3000
    latent = rng.normal(size=n)
    y = (rng.random(n) < 1 / (1 + np.exp(-2.0 * latent))).astype(int)
    raw = 0.2 * latent - 1.0  # squashed and shifted
    return raw, y


class TestPlattCalibrator:
    def test_improves_brier_score(self, miscalibrated_scores):
        raw, y = miscalibrated_scores
        calibrated = PlattCalibrator().fit(raw, y).predict_proba_positive(raw)
        squashed = 1 / (1 + np.exp(-raw))
        assert brier_score(y, calibrated) < brier_score(y, squashed) - 0.01

    def test_preserves_ranking(self, miscalibrated_scores):
        raw, y = miscalibrated_scores
        calibrated = PlattCalibrator().fit(raw, y).predict_proba_positive(raw)
        assert roc_auc_score(y, calibrated) == pytest.approx(
            roc_auc_score(y, raw), abs=1e-9
        )

    def test_recovers_true_sigmoid_slope(self, rng):
        n = 20000
        scores = rng.normal(size=n)
        y = (rng.random(n) < 1 / (1 + np.exp(-(3.0 * scores + 0.5)))).astype(int)
        calibrator = PlattCalibrator().fit(scores, y)
        assert calibrator.a_ == pytest.approx(3.0, abs=0.3)
        assert calibrator.b_ == pytest.approx(0.5, abs=0.2)

    def test_output_in_unit_interval(self, miscalibrated_scores):
        raw, y = miscalibrated_scores
        p = PlattCalibrator().fit(raw, y).predict_proba_positive(raw)
        assert p.min() >= 0.0 and p.max() <= 1.0

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError, match="both classes"):
            PlattCalibrator().fit([0.1, 0.2], [1, 1])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PlattCalibrator().predict_proba_positive([0.5])


class TestCalibratedClassifier:
    def test_wraps_logistic_regression(self, binary_problem):
        X, y = binary_problem
        base = LogisticRegression(C=1e-3).fit(X, y)  # over-regularized
        wrapped = CalibratedClassifier(base=base).fit(X, y)
        assert brier_score(y, wrapped.predict_proba(X)[:, 1]) <= brier_score(
            y, base.predict_proba(X)[:, 1]
        ) + 1e-9

    def test_predict_threshold(self, binary_problem):
        X, y = binary_problem
        base = LogisticRegression().fit(X, y)
        strict = CalibratedClassifier(base=base, threshold=0.9).fit(X, y)
        lax = CalibratedClassifier(base=base, threshold=0.1).fit(X, y)
        assert strict.predict(X).mean() < lax.predict(X).mean()

    def test_proba_rows_sum_to_one(self, binary_problem):
        X, y = binary_problem
        wrapped = CalibratedClassifier(
            base=LogisticRegression().fit(X, y)
        ).fit(X, y)
        np.testing.assert_allclose(
            wrapped.predict_proba(X).sum(axis=1), 1.0
        )

    def test_requires_base(self, binary_problem):
        X, y = binary_problem
        with pytest.raises(ValidationError, match="base estimator"):
            CalibratedClassifier().fit(X, y)

    def test_invalid_threshold(self, binary_problem):
        X, y = binary_problem
        base = LogisticRegression().fit(X, y)
        with pytest.raises(ValidationError, match="threshold"):
            CalibratedClassifier(base=base, threshold=1.5).fit(X, y)

    def test_reduces_group_calibration_gap_on_compas(self):
        # Calibrating the decile scores per the pooled population narrows
        # (though cannot eliminate) the cross-group reliability gap.
        from repro.datasets import simulate_compas

        data = simulate_compas(1500, 1500, seed=0)
        deciles = (data.side_information - 1.0) / 9.0
        raw_gap = calibration_gap(data.y, deciles, data.s, n_bins=5)
        calibrated = PlattCalibrator().fit(deciles, data.y)
        adjusted = calibrated.predict_proba_positive(deciles)
        new_gap = calibration_gap(data.y, adjusted, data.s, n_bins=5)
        assert np.isfinite(new_gap)
        assert new_gap <= raw_gap + 0.05  # pooled Platt cannot widen it much
