"""Tests for repro.ml.linear — logistic and ridge regression."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml import LogisticRegression, RidgeRegression, roc_auc_score, sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_are_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), np.ones_like(z))


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression(C=10.0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_auc_on_noisy_data(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression().fit(X, y)
        assert roc_auc_score(y, model.predict_proba(X)[:, 1]) > 0.9

    def test_recovers_direction(self, rng):
        # With strong signal the weight vector should align with the truth.
        X = rng.normal(size=(2000, 3))
        w_true = np.array([2.0, -1.0, 0.0])
        y = (X @ w_true + rng.normal(scale=0.1, size=2000) > 0).astype(int)
        model = LogisticRegression(C=100.0).fit(X, y)
        direction = model.coef_ / np.linalg.norm(model.coef_)
        truth = w_true / np.linalg.norm(w_true)
        assert abs(direction @ truth) > 0.98

    def test_predict_proba_rows_sum_to_one(self, binary_problem):
        X, y = binary_problem
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(len(X)))
        assert np.all(proba >= 0) and np.all(proba <= 1)

    def test_predict_consistent_with_proba(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression().fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X), (model.predict_proba(X)[:, 1] >= 0.5).astype(int)
        )

    def test_regularization_shrinks_weights(self, binary_problem):
        X, y = binary_problem
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.01).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_intercept_not_penalized(self, rng):
        # With an extreme class prior and no features carrying signal, the
        # intercept must still move freely under strong regularization.
        X = rng.normal(size=(300, 2))
        y = (rng.random(300) < 0.9).astype(int)
        model = LogisticRegression(C=1e-3).fit(X, y)
        assert sigmoid(np.array([model.intercept_]))[0] == pytest.approx(
            y.mean(), abs=0.05
        )

    def test_single_class_predicts_constant(self):
        X = np.array([[0.0], [1.0], [2.0]])
        model = LogisticRegression().fit(X, np.ones(3, dtype=int))
        assert model.predict(X).tolist() == [1, 1, 1]
        model = LogisticRegression().fit(X, np.zeros(3, dtype=int))
        assert model.predict(X).tolist() == [0, 0, 0]

    def test_balanced_class_weight(self, rng):
        # 95/5 imbalance: balanced weighting must raise recall on the
        # minority class relative to unweighted fitting.
        X = np.vstack([rng.normal(-0.5, 1, size=(950, 2)), rng.normal(0.8, 1, size=(50, 2))])
        y = np.concatenate([np.zeros(950, dtype=int), np.ones(50, dtype=int)])
        plain = LogisticRegression().fit(X, y)
        balanced = LogisticRegression(class_weight="balanced").fit(X, y)
        assert balanced.predict(X)[y == 1].mean() > plain.predict(X)[y == 1].mean()

    def test_invalid_class_weight(self, binary_problem):
        X, y = binary_problem
        with pytest.raises(ValidationError, match="class_weight"):
            LogisticRegression(class_weight="bogus").fit(X, y)

    def test_invalid_c(self, binary_problem):
        X, y = binary_problem
        with pytest.raises(ValidationError, match="C must be positive"):
            LogisticRegression(C=0.0).fit(X, y)

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValidationError, match="binary"):
            LogisticRegression().fit(np.ones((3, 1)), [0, 1, 2])

    def test_not_fitted_error(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.ones((2, 2)))

    def test_feature_count_mismatch(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            model.predict(X[:, :2])

    def test_no_intercept_mode(self, binary_problem):
        X, y = binary_problem
        model = LogisticRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_deterministic(self, binary_problem):
        X, y = binary_problem
        a = LogisticRegression().fit(X, y)
        b = LogisticRegression().fit(X, y)
        np.testing.assert_allclose(a.coef_, b.coef_)


class TestRidgeRegression:
    def test_exact_fit_without_noise(self, rng):
        X = rng.normal(size=(50, 3))
        w = np.array([1.0, -2.0, 0.5])
        y = X @ w + 3.0
        model = RidgeRegression(alpha=1e-10).fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-6)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-6)

    def test_alpha_zero_matches_least_squares(self, rng):
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        model = RidgeRegression(alpha=0.0).fit(X, y)
        design = np.column_stack([X, np.ones(30)])
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        np.testing.assert_allclose(model.coef_, beta[:2], atol=1e-8)

    def test_shrinkage(self, rng):
        X = rng.normal(size=(40, 3))
        y = X @ np.array([5.0, 5.0, 5.0]) + rng.normal(size=40)
        small = RidgeRegression(alpha=0.01).fit(X, y)
        large = RidgeRegression(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_r2_score_perfect(self, rng):
        X = rng.normal(size=(20, 2))
        y = X @ np.array([1.0, 1.0])
        model = RidgeRegression(alpha=1e-12).fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0, abs=1e-8)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValidationError, match="alpha"):
            RidgeRegression(alpha=-1.0).fit(np.ones((3, 1)), np.ones(3))
