"""Tests for repro.ml.metrics — hand-computed values and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.ml import (
    accuracy_score,
    brier_score,
    confusion_matrix,
    f1_score,
    false_negative_rate,
    false_positive_rate,
    log_loss,
    positive_prediction_rate,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
    true_negative_rate,
    true_positive_rate,
)

Y_TRUE = np.array([0, 0, 1, 1, 1, 0, 1, 0])
Y_PRED = np.array([0, 1, 1, 0, 1, 0, 1, 1])
# confusion: TN=2, FP=2, FN=1, TP=3


class TestConfusionDerived:
    def test_confusion_matrix_layout(self):
        matrix = confusion_matrix(Y_TRUE, Y_PRED)
        np.testing.assert_array_equal(matrix, [[2, 2], [1, 3]])

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(5 / 8)

    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 5)

    def test_recall_equals_tpr(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)
        assert true_positive_rate(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_f1(self):
        p, r = 3 / 5, 3 / 4
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 * p * r / (p + r))

    def test_fpr(self):
        assert false_positive_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)

    def test_fnr(self):
        assert false_negative_rate(Y_TRUE, Y_PRED) == pytest.approx(1 / 4)

    def test_tnr_complements_fpr(self):
        assert true_negative_rate(Y_TRUE, Y_PRED) == pytest.approx(
            1 - false_positive_rate(Y_TRUE, Y_PRED)
        )

    def test_positive_prediction_rate(self):
        assert positive_prediction_rate(Y_PRED) == pytest.approx(5 / 8)

    def test_degenerate_no_positives(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            accuracy_score([0, 2], [0, 1])


class TestRocCurve:
    def test_perfect_classifier(self):
        fpr, tpr, thresholds = roc_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        # The curve must pass through (0, 1) for a perfect ranking.
        assert any(f == 0.0 and t == 1.0 for f, t in zip(fpr, tpr))
        assert thresholds[0] == np.inf

    def test_monotone(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 100)
        y[:2] = [0, 1]
        scores = rng.random(100)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError, match="both classes"):
            roc_curve([1, 1], [0.3, 0.4])


class TestAuc:
    def test_perfect(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_ties_get_half_credit(self):
        # positives: 0.5, 0.9 ; negatives: 0.5, 0.1
        # pairs: (0.5 vs 0.5) = 0.5, (0.5 vs 0.1) = 1, (0.9 vs 0.5) = 1, (0.9 vs 0.1) = 1
        assert roc_auc_score([0, 1, 1, 0], [0.5, 0.5, 0.9, 0.1]) == pytest.approx(
            3.5 / 4
        )

    def test_matches_trapezoid_area(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, 200)
        y[:2] = [0, 1]
        scores = np.round(rng.random(200), 2)  # force ties
        fpr, tpr, _ = roc_curve(y, scores)
        area = float(np.trapezoid(tpr, fpr))
        assert roc_auc_score(y, scores) == pytest.approx(area, abs=1e-12)

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(4)
        y = rng.integers(0, 2, 100)
        y[:2] = [0, 1]
        scores = rng.normal(size=100)
        a = roc_auc_score(y, scores)
        b = roc_auc_score(y, np.exp(scores))
        assert a == pytest.approx(b)


class TestProbMetrics:
    def test_log_loss_perfect(self):
        assert log_loss([0, 1], [0.0, 1.0]) == pytest.approx(0.0, abs=1e-10)

    def test_log_loss_uniform(self):
        assert log_loss([0, 1], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_brier_bounds(self):
        assert brier_score([0, 1], [0.0, 1.0]) == 0.0
        assert brier_score([0, 1], [1.0, 0.0]) == 1.0


@settings(max_examples=50, deadline=None)
@given(
    labels=st.lists(st.integers(0, 1), min_size=4, max_size=60),
    raw=st.lists(st.floats(-5, 5, allow_nan=False), min_size=4, max_size=60),
)
def test_auc_symmetry_property(labels, raw):
    """AUC(y, s) + AUC(y, -s) == 1 whenever both classes are present."""
    n = min(len(labels), len(raw))
    y = np.asarray(labels[:n])
    scores = np.asarray(raw[:n])
    if len(np.unique(y)) < 2:
        return
    total = roc_auc_score(y, scores) + roc_auc_score(y, -scores)
    assert total == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    y_true=st.lists(st.integers(0, 1), min_size=2, max_size=40),
    y_pred=st.lists(st.integers(0, 1), min_size=2, max_size=40),
)
def test_confusion_sums_property(y_true, y_pred):
    """Confusion matrix entries always sum to the sample count."""
    n = min(len(y_true), len(y_pred))
    matrix = confusion_matrix(y_true[:n], y_pred[:n])
    assert matrix.sum() == n
    assert (matrix >= 0).all()
