"""Tests for the extended classification metrics (PR curve, AP, balanced
accuracy)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import (
    average_precision_score,
    balanced_accuracy_score,
    precision_recall_curve,
)


def reference_average_precision(y_true, y_score) -> float:
    """AP as the mean of precision at each positive's rank (ties by stable
    descending order)."""
    order = np.argsort(-np.asarray(y_score), kind="stable")
    sorted_true = np.asarray(y_true)[order]
    hits = 0
    total = 0.0
    for k, label in enumerate(sorted_true, start=1):
        if label == 1:
            hits += 1
            total += hits / k
    return total / max(hits, 1)


class TestBalancedAccuracy:
    def test_perfect(self):
        assert balanced_accuracy_score([0, 1, 0, 1], [0, 1, 0, 1]) == 1.0

    def test_majority_vote_is_half(self):
        y = np.array([0] * 90 + [1] * 10)
        pred = np.zeros(100, dtype=int)
        assert balanced_accuracy_score(y, pred) == pytest.approx(0.5)

    def test_hand_computed(self):
        y = np.array([1, 1, 0, 0])
        pred = np.array([1, 0, 0, 1])
        # TPR = 0.5, TNR = 0.5
        assert balanced_accuracy_score(y, pred) == pytest.approx(0.5)


class TestPrecisionRecallCurve:
    def test_perfect_ranking(self):
        p, r, t = precision_recall_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert p[0] == 1.0 and r[0] == 0.5  # top-1 is a positive
        assert r[-1] == 0.0 and p[-1] == 1.0  # appended closing point
        assert np.all((p >= 0) & (p <= 1))

    def test_recall_reaches_one(self):
        p, r, _ = precision_recall_curve([1, 0, 1], [0.9, 0.5, 0.1])
        assert r.max() == 1.0

    def test_threshold_count_matches_distinct_scores(self):
        _, _, t = precision_recall_curve([0, 1, 0, 1], [0.1, 0.5, 0.5, 0.9])
        assert len(t) == 3  # distinct scores 0.9, 0.5, 0.1

    def test_requires_positives(self):
        with pytest.raises(ValidationError, match="positive"):
            precision_recall_curve([0, 0], [0.1, 0.2])


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision_score([0, 1, 1], [0.1, 0.8, 0.9]) == 1.0

    def test_worst_ranking(self):
        # one positive ranked last among 4
        ap = average_precision_score([1, 0, 0, 0], [0.1, 0.9, 0.8, 0.7])
        assert ap == pytest.approx(0.25)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_without_ties(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 50)
        y[:2] = [0, 1]
        scores = rng.permutation(50).astype(float)  # distinct scores
        assert average_precision_score(y, scores) == pytest.approx(
            reference_average_precision(y, scores)
        )

    def test_bounded(self, rng):
        y = rng.integers(0, 2, 40)
        y[:2] = [0, 1]
        scores = rng.random(40)
        ap = average_precision_score(y, scores)
        assert 0.0 < ap <= 1.0
