"""Tests for repro.ml.model_selection — splits, CV, grid search."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import (
    GridSearchCV,
    KFold,
    LogisticRegression,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(50, 2)
        X_train, X_test = train_test_split(X, test_size=0.3, seed=0)
        assert len(X_test) == 15
        assert len(X_train) == 35

    def test_partition_covers_everything(self):
        X = np.arange(40)
        a, b = train_test_split(X, test_size=0.25, seed=1)
        assert sorted(np.concatenate([a, b]).tolist()) == list(range(40))

    def test_multiple_arrays_aligned(self):
        X = np.arange(60).reshape(30, 2)
        y = np.arange(30)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, seed=2)
        np.testing.assert_array_equal(X_train[:, 0] // 2, y_train)
        np.testing.assert_array_equal(X_test[:, 0] // 2, y_test)

    def test_stratified_preserves_rates(self):
        y = np.array([0] * 80 + [1] * 20)
        y_train, y_test = train_test_split(y, test_size=0.25, stratify=y, seed=3)
        assert y_test.mean() == pytest.approx(0.2, abs=0.01)
        assert len(y_test) == 25

    def test_deterministic_given_seed(self):
        X = np.arange(30)
        a1, b1 = train_test_split(X, test_size=0.5, seed=9)
        a2, b2 = train_test_split(X, test_size=0.5, seed=9)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_invalid_test_size(self):
        with pytest.raises(ValidationError):
            train_test_split(np.arange(10), test_size=1.5)

    def test_empty_split_rejected(self):
        with pytest.raises(ValidationError):
            train_test_split(np.arange(3), test_size=0.01)


class TestKFold:
    def test_folds_partition(self):
        X = np.arange(23)
        seen = []
        for train_idx, test_idx in KFold(n_splits=5).split(X):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_fold_sizes_balanced(self):
        sizes = [len(t) for _, t in KFold(n_splits=4).split(np.arange(10))]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_shuffle_changes_order(self):
        X = np.arange(20)
        plain = [t.tolist() for _, t in KFold(n_splits=4).split(X)]
        shuffled = [t.tolist() for _, t in KFold(n_splits=4, shuffle=True, seed=0).split(X)]
        assert plain != shuffled

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_min_splits(self):
        with pytest.raises(ValidationError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_class_balance_per_fold(self):
        y = np.array([0] * 40 + [1] * 10)
        for _, test_idx in StratifiedKFold(n_splits=5).split(np.zeros(50), y):
            assert np.sum(y[test_idx] == 1) == 2
            assert np.sum(y[test_idx] == 0) == 8

    def test_partition(self):
        y = np.array([0, 1] * 15)
        seen = []
        for _, test_idx in StratifiedKFold(n_splits=3).split(np.zeros(30), y):
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(30))

    def test_rare_class_rejected(self):
        y = np.array([0] * 28 + [1] * 2)
        with pytest.raises(ValidationError, match="only"):
            list(StratifiedKFold(n_splits=5).split(np.zeros(30), y))


class TestParameterGrid:
    def test_product(self):
        grid = list(ParameterGrid({"a": [1, 2], "b": [3, 4]}))
        assert len(grid) == 4
        assert {"a": 1, "b": 3} in grid

    def test_len(self):
        assert len(ParameterGrid({"a": [1, 2, 3], "b": [1]})) == 3

    def test_list_of_grids(self):
        grid = list(ParameterGrid([{"a": [1]}, {"b": [2, 3]}]))
        assert len(grid) == 3

    def test_empty_values_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            ParameterGrid({"a": []})

    def test_scalar_values_rejected(self):
        with pytest.raises(ValidationError, match="sequences"):
            ParameterGrid({"a": 1})


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, binary_problem):
        X, y = binary_problem
        scores = cross_val_score(LogisticRegression(), X, y, cv=KFold(n_splits=4))
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_auc_scoring(self, binary_problem):
        X, y = binary_problem
        scores = cross_val_score(
            LogisticRegression(), X, y, cv=StratifiedKFold(3), scoring="roc_auc"
        )
        assert scores.mean() > 0.85

    def test_unknown_scoring(self, binary_problem):
        X, y = binary_problem
        with pytest.raises(ValidationError, match="unknown scoring"):
            cross_val_score(LogisticRegression(), X, y, scoring="nope")

    def test_callable_scorer(self, binary_problem):
        X, y = binary_problem

        def negative_count_scorer(estimator, X_val, y_val):
            return float(np.mean(estimator.predict(X_val) == 0))

        scores = cross_val_score(
            LogisticRegression(), X, y, cv=KFold(3), scoring=negative_count_scorer
        )
        assert scores.shape == (3,)
        assert np.all((scores >= 0) & (scores <= 1))


class TestGridSearchCV:
    def test_finds_better_c(self, binary_problem):
        X, y = binary_problem
        search = GridSearchCV(
            estimator=LogisticRegression(),
            param_grid={"C": [1e-4, 1.0]},
            scoring="roc_auc",
            cv=StratifiedKFold(3),
        ).fit(X, y)
        assert search.best_params_["C"] == 1.0
        assert search.best_score_ > 0.8

    def test_refits_best_estimator(self, binary_problem):
        X, y = binary_problem
        search = GridSearchCV(
            estimator=LogisticRegression(),
            param_grid={"C": [0.5, 2.0]},
        ).fit(X, y)
        assert search.best_estimator_.C == search.best_params_["C"]
        assert search.predict(X).shape == (len(y),)

    def test_cv_results_complete(self, binary_problem):
        X, y = binary_problem
        search = GridSearchCV(
            estimator=LogisticRegression(),
            param_grid={"C": [0.1, 1.0, 10.0]},
        ).fit(X, y)
        assert len(search.cv_results_) == 3
        assert all("mean_score" in r for r in search.cv_results_)

    def test_std_score_is_sample_std(self, binary_problem):
        X, y = binary_problem
        cv = StratifiedKFold(3)
        search = GridSearchCV(
            estimator=LogisticRegression(),
            param_grid={"C": [1.0]},
            scoring="roc_auc",
            cv=cv,
        ).fit(X, y)
        fold_scores = cross_val_score(
            LogisticRegression(C=1.0), X, y, cv=cv, scoring="roc_auc"
        )
        record = search.cv_results_[0]
        assert record["mean_score"] == float(np.mean(fold_scores))
        # Error bars use sample std (ddof=1): fold scores are a sample of
        # the score distribution, not the whole population.
        assert record["std_score"] == float(np.std(fold_scores, ddof=1))
        assert record["std_score"] != float(np.std(fold_scores))

    def test_requires_estimator_and_grid(self, binary_problem):
        X, y = binary_problem
        with pytest.raises(ValidationError):
            GridSearchCV().fit(X, y)

    def test_predict_before_fit(self):
        with pytest.raises(ValidationError, match="not fitted"):
            GridSearchCV(LogisticRegression(), {"C": [1.0]}).predict(np.ones((2, 2)))
