"""Tests for repro.ml.pipeline — estimator composition."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import LogisticRegression, Pipeline, StandardScaler


@pytest.fixture
def pipe():
    return Pipeline(
        steps=[("scale", StandardScaler()), ("clf", LogisticRegression(C=2.0))]
    )


class TestPipeline:
    def test_fit_predict(self, pipe, binary_problem):
        X, y = binary_problem
        pipe.fit(X, y)
        assert pipe.predict(X).shape == (len(y),)
        assert pipe.score(X, y) > 0.8

    def test_matches_manual_chain(self, pipe, binary_problem):
        X, y = binary_problem
        pipe.fit(X, y)
        scaler = StandardScaler().fit(X)
        clf = LogisticRegression(C=2.0).fit(scaler.transform(X), y)
        np.testing.assert_allclose(
            pipe.predict_proba(X), clf.predict_proba(scaler.transform(X)), atol=1e-8
        )

    def test_decision_function_passthrough(self, pipe, binary_problem):
        X, y = binary_problem
        pipe.fit(X, y)
        assert pipe.decision_function(X).shape == (len(y),)

    def test_named_steps(self, pipe):
        assert isinstance(pipe.named_steps["scale"], StandardScaler)

    def test_nested_params_in_get_params(self, pipe):
        params = pipe.get_params()
        assert params["clf__C"] == 2.0

    def test_set_nested_params(self, pipe):
        pipe.set_params(clf__C=5.0)
        assert pipe.named_steps["clf"].C == 5.0

    def test_set_unknown_step(self, pipe):
        with pytest.raises(ValidationError, match="no step"):
            pipe.set_params(bogus__C=1.0)

    def test_set_non_nested_key_rejected(self, pipe):
        with pytest.raises(ValidationError, match="unknown Pipeline parameter"):
            pipe.set_params(C=1.0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            Pipeline(steps=[]).fit(np.ones((2, 2)), [0, 1])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError, match="unique"):
            Pipeline(
                steps=[("a", StandardScaler()), ("a", StandardScaler())]
            ).fit(np.ones((2, 2)))

    def test_intermediate_must_transform(self, binary_problem):
        X, y = binary_problem
        bad = Pipeline(
            steps=[("clf", LogisticRegression()), ("clf2", LogisticRegression())]
        )
        with pytest.raises(ValidationError, match="transform"):
            bad.fit(X, y)

    def test_transform_only_pipeline(self, small_X):
        pipe = Pipeline(steps=[("scale", StandardScaler())])
        Z = pipe.fit(small_X).transform(small_X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
