"""Tests for repro.ml.preprocessing — scalers and one-hot encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import NotFittedError, ValidationError
from repro.ml import MinMaxScaler, OneHotEncoder, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, small_X):
        Z = StandardScaler().fit_transform(small_X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self, small_X):
        scaler = StandardScaler().fit(small_X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(small_X)), small_X, atol=1e-10
        )

    def test_transform_uses_training_statistics(self, small_X, rng):
        scaler = StandardScaler().fit(small_X)
        other = rng.normal(5.0, 2.0, size=(10, small_X.shape[1]))
        Z = scaler.transform(other)
        np.testing.assert_allclose(Z, (other - scaler.mean_) / scaler.scale_)

    def test_without_mean(self, small_X):
        Z = StandardScaler(with_mean=False).fit_transform(small_X)
        assert not np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)

    def test_without_std(self, small_X):
        scaler = StandardScaler(with_std=False).fit(small_X)
        np.testing.assert_allclose(scaler.scale_, 1.0)

    def test_feature_mismatch_raises(self, small_X):
        scaler = StandardScaler().fit(small_X)
        with pytest.raises(ValidationError, match="features"):
            scaler.transform(small_X[:, :2])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_unit_interval(self, small_X):
        Z = MinMaxScaler().fit_transform(small_X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, small_X):
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(small_X)
        np.testing.assert_allclose(Z.min(axis=0), -1.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_constant_column_maps_to_lower_bound(self):
        X = np.column_stack([np.full(5, 3.0), np.arange(5, dtype=float)])
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self, small_X):
        scaler = MinMaxScaler(feature_range=(2.0, 5.0)).fit(small_X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(small_X)), small_X, atol=1e-10
        )

    def test_invalid_range(self):
        with pytest.raises(ValidationError, match="increasing"):
            MinMaxScaler(feature_range=(1.0, 1.0)).fit(np.ones((3, 1)))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([["a"], ["b"], ["a"], ["c"]])
        encoder = OneHotEncoder().fit(X)
        Z = encoder.transform(X)
        assert Z.shape == (4, 3)
        np.testing.assert_allclose(Z.sum(axis=1), 1.0)

    def test_multiple_columns(self):
        X = np.array([[0, "x"], [1, "y"], [0, "x"]], dtype=object)
        Z = OneHotEncoder().fit_transform(X)
        assert Z.shape == (3, 4)

    def test_drop_first(self):
        X = np.array([["a"], ["b"], ["c"]])
        Z = OneHotEncoder(drop_first=True).fit_transform(X)
        assert Z.shape == (3, 2)
        np.testing.assert_allclose(Z[0], [0.0, 0.0])  # first category dropped

    def test_unknown_raises_by_default(self):
        encoder = OneHotEncoder().fit(np.array([["a"], ["b"]]))
        with pytest.raises(ValidationError, match="unseen"):
            encoder.transform(np.array([["z"]]))

    def test_unknown_ignored_when_asked(self):
        encoder = OneHotEncoder(handle_unknown="ignore").fit(np.array([["a"], ["b"]]))
        Z = encoder.transform(np.array([["z"]]))
        np.testing.assert_allclose(Z, [[0.0, 0.0]])

    def test_invalid_handle_unknown(self):
        with pytest.raises(ValidationError, match="handle_unknown"):
            OneHotEncoder(handle_unknown="boom").fit(np.array([["a"]]))

    def test_feature_names(self):
        encoder = OneHotEncoder().fit(np.array([["a"], ["b"]]))
        assert encoder.get_feature_names(["color"]) == ["color=a", "color=b"]

    def test_feature_names_drop_first(self):
        encoder = OneHotEncoder(drop_first=True).fit(np.array([["a"], ["b"]]))
        assert encoder.get_feature_names(["c"]) == ["c=b"]

    def test_integer_categories(self):
        X = np.array([[1], [3], [1], [2]])
        Z = OneHotEncoder().fit_transform(X)
        assert Z.shape == (4, 3)
        np.testing.assert_allclose(Z[:, 0], [1.0, 0.0, 1.0, 0.0])


@settings(max_examples=30, deadline=None)
@given(
    X=arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(1, 6)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
def test_standard_scaler_idempotent_property(X):
    """Scaling already-scaled data is (numerically) a no-op."""
    scaler = StandardScaler()
    once = scaler.fit_transform(X)
    twice = StandardScaler().fit_transform(once)
    np.testing.assert_allclose(once, twice, atol=1e-7)
