"""End-to-end support for more than two protected groups (§3.1).

"We allow more than two values for this attribute, going beyond the usual
binary model." The quantile graph, PFR, the fairness metrics, and Hardt
post-processing all support k > 2 groups; this module exercises the full
pipeline with three.
"""

import numpy as np
import pytest

from repro.baselines import EqualizedOddsPostProcessor
from repro.core import PFR
from repro.graphs import between_group_quantile_graph, graph_summary
from repro.metrics import (
    consistency,
    demographic_parity_gap,
    group_auc,
    group_rates,
    restrict_graph,
)
from repro.ml import LogisticRegression, StandardScaler, train_test_split


@pytest.fixture(scope="module")
def three_group_data():
    """Three groups, equal latent merit, group-shifted observed scores —
    the ML/PL-researcher scenario of §1.1 with a third community.

    The protected attribute is one-hot encoded: with a single integer
    column, no *linear* map can cancel a non-monotone per-group shift
    (0, +1.5, -1), so linear PFR needs the indicator columns to absorb it.
    """
    rng = np.random.default_rng(7)
    n_per_group = 120
    s = np.repeat([0, 1, 2], n_per_group)
    merit = rng.normal(size=3 * n_per_group)
    shift = np.array([0.0, 1.5, -1.0])[s]  # citation-culture offsets
    observed = merit + shift + rng.normal(0, 0.3, size=3 * n_per_group)
    other = rng.normal(size=(3 * n_per_group, 2))
    one_hot = np.eye(3)[s]
    X = np.column_stack([observed, other, one_hot])
    y = (merit + rng.normal(0, 0.4, size=3 * n_per_group) > 0).astype(int)
    return X, y, s, merit


class TestThreeGroupPipeline:
    def test_quantile_graph_is_tripartite(self, three_group_data):
        X, y, s, merit = three_group_data
        W = between_group_quantile_graph(merit, s, n_quantiles=5)
        rows, cols = W.nonzero()
        assert np.all(s[rows] != s[cols])
        assert graph_summary(W, groups=s)["cross_group_fraction"] == 1.0

    def test_pfr_improves_three_way_parity(self, three_group_data):
        X, y, s, merit = three_group_data
        Xs = StandardScaler().fit_transform(X)
        indices = np.arange(len(y))
        train, test = train_test_split(indices, test_size=0.3, stratify=y, seed=0)
        W = between_group_quantile_graph(merit, s, n_quantiles=5)

        def evaluate(Z_train, Z_test):
            scaler = StandardScaler().fit(Z_train)
            clf = LogisticRegression().fit(scaler.transform(Z_train), y[train])
            pred = clf.predict(scaler.transform(Z_test))
            return demographic_parity_gap(pred, s[test]), pred

        baseline_gap, _ = evaluate(Xs[train][:, :3], Xs[test][:, :3])
        model = PFR(n_components=2, gamma=1.0, exclude_columns=[3, 4, 5],
                    n_neighbors=6).fit(Xs[train], restrict_graph(W, train))
        pfr_gap, pfr_pred = evaluate(
            model.transform(Xs[train]), model.transform(Xs[test])
        )
        assert pfr_gap < baseline_gap
        assert consistency(pfr_pred, restrict_graph(W, test)) > 0.5

    def test_group_metrics_report_all_three(self, three_group_data):
        X, y, s, _ = three_group_data
        rng = np.random.default_rng(0)
        pred = np.where(rng.random(len(y)) < 0.15, 1 - y, y)
        rates = group_rates(y, pred, s)
        assert rates.groups == (0, 1, 2)
        aucs = group_auc(y, pred.astype(float), s)
        assert set(aucs) == {0, 1, 2, "any"}

    def test_hardt_equalizes_three_groups(self, three_group_data):
        X, y, s, _ = three_group_data
        rng = np.random.default_rng(1)
        # group-dependent error rates for the base predictor
        flip_rate = np.array([0.05, 0.3, 0.15])[s]
        base = np.where(rng.random(len(y)) < flip_rate, 1 - y, y)
        post = EqualizedOddsPostProcessor(seed=0).fit(y, base, s)
        assert len(post.mix_probabilities_) == 3
        fair = post.predict(base, s)
        assert group_rates(y, fair, s).gap("fpr") < group_rates(y, base, s).gap("fpr")
