"""Tests for repro.obs.export and the ``repro obs`` CLI family."""

import json

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.obs import (
    MetricsRegistry,
    format_metrics,
    format_trace_summary,
    read_trace,
    summarize_trace,
)


def _write_jsonl(path, records):
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )


def _span(name, duration, pid=1, **attrs):
    record = {
        "format": 1, "type": "span", "name": name, "span_id": f"{pid}-x",
        "parent_id": None, "ts": 0.0, "duration_s": duration, "pid": pid,
        "status": "ok",
    }
    if attrs:
        record["attrs"] = attrs
    return record


def _metrics(pid, counters=(), histograms=()):
    return {
        "format": 1, "type": "metrics", "ts": 0.0, "pid": pid,
        "metrics": {
            "counters": list(counters),
            "gauges": [],
            "histograms": list(histograms),
        },
    }


def _counter(name, value, **labels):
    return {"name": name, "labels": labels, "value": value}


class TestReadTrace:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [_span("a", 0.1), _span("b", 0.2)]
        _write_jsonl(path, records)
        assert read_trace(path) == records

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            read_trace(tmp_path / "absent.jsonl")

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(_span("a", 0.1)) + "\n" + '{"type": "span", "na'
        )
        assert [r["name"] for r in read_trace(path)] == ["a"]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "garbage not json\n" + json.dumps(_span("a", 0.1)) + "\n"
        )
        with pytest.raises(ValidationError, match="line 1"):
            read_trace(path)

    def test_blank_lines_and_non_dicts_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n" + json.dumps(_span("a", 0.1)) + "\n\n[1, 2]\n"
        )
        assert len(read_trace(path)) == 1


class TestSummarizeTrace:
    def test_stage_aggregation(self):
        records = [
            _span("plan.solve", 0.1),
            _span("plan.solve", 0.3),
            _span("plan.graph", 0.05),
        ]
        summary = summarize_trace(records)
        assert summary["spans"] == 3
        solve = summary["stages"]["plan.solve"]
        assert solve["count"] == 2
        assert solve["total_s"] == pytest.approx(0.4)
        assert solve["mean_s"] == pytest.approx(0.2)
        assert solve["max_s"] == pytest.approx(0.3)

    def test_cells_from_last_spec_run_span(self):
        records = [
            _span("spec.run", 1.0, total=8, cached=0, computed=8),
            _span("spec.run", 0.2, total=8, cached=8, computed=0),
        ]
        assert summarize_trace(records)["cells"] == {
            "total": 8, "cached": 8, "computed": 0,
        }

    def test_ledger_metrics_last_per_pid_summed_across_pids(self):
        records = [
            # Two snapshots from pid 1: only the later one counts.
            _metrics(1, counters=[_counter("ledger.hits", 1.0, root="/s")]),
            _metrics(1, counters=[
                _counter("ledger.hits", 5.0, root="/s"),
                _counter("ledger.misses", 5.0, root="/s"),
            ]),
            # A worker pid contributes additively.
            _metrics(2, counters=[_counter("ledger.hits", 4.0, root="/s")]),
        ]
        ledger = summarize_trace(records)["ledger"]
        assert ledger["hits"] == 9
        assert ledger["misses"] == 5
        assert ledger["lookups"] == 14
        assert ledger["hit_rate"] == pytest.approx(9 / 14)

    def test_solve_cache_counters(self):
        records = [
            _metrics(1, counters=[
                _counter("plan.solve_cache.hits", 3.0, gamma="0.5"),
                _counter("plan.solve_cache.misses", 1.0, gamma="0.5"),
                _counter("plan.solve_cache.hits", 2.0, gamma="1"),
            ]),
        ]
        assert summarize_trace(records)["solve_cache"] == {
            "hits": 5, "misses": 1,
        }

    def test_empty_sections_are_none(self):
        summary = summarize_trace([_span("x", 0.1)])
        assert summary["cells"] is None
        assert summary["ledger"] is None
        assert summary["solve_cache"] is None

    def test_process_count(self):
        records = [_span("a", 0.1, pid=10), _span("b", 0.1, pid=20)]
        assert summarize_trace(records)["processes"] == 2

    def test_summary_is_json_safe(self):
        records = [
            _span("spec.run", 1.0, total=1, cached=0, computed=1),
            _metrics(1, counters=[_counter("ledger.hits", 1.0)]),
        ]
        json.dumps(summarize_trace(records), sort_keys=True)


class TestFormatters:
    def test_format_trace_summary_mentions_everything(self):
        records = [
            _span("plan.solve", 0.1),
            _span("spec.run", 1.0, total=4, cached=3, computed=1),
            _metrics(1, counters=[
                _counter("ledger.hits", 3.0, root="/s"),
                _counter("ledger.misses", 1.0, root="/s"),
                _counter("plan.solve_cache.hits", 1.0),
            ]),
        ]
        text = format_trace_summary(summarize_trace(records))
        assert "plan.solve" in text
        assert "4 total" in text and "3 cached" in text
        assert "75%" in text
        assert "solve cache" in text

    def test_format_metrics(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2.0, root="/s")
        reg.set_gauge("depth", 3)
        reg.observe("lat", 0.5)
        text = format_metrics(reg.snapshot())
        assert "counter hits{root=/s} = 2" in text
        assert "gauge depth = 3" in text
        assert "histogram lat count=1" in text

    def test_format_metrics_empty(self):
        assert format_metrics(MetricsRegistry().snapshot()) == (
            "(no metrics recorded)"
        )


class TestObsCLI:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_jsonl(path, [
            _span("plan.graph", 0.01),
            _span("spec.run", 0.5, total=2, cached=1, computed=1),
            _metrics(1, counters=[
                _counter("ledger.hits", 1.0, root="/s"),
                _counter("ledger.misses", 1.0, root="/s"),
            ]),
        ])
        return path

    def test_summary_table(self, trace_path, capsys):
        assert main(["obs", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "plan.graph" in out
        assert "2 total" in out
        assert "50%" in out

    def test_summary_json(self, trace_path, capsys):
        assert main(["obs", "summary", str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == {"total": 2, "cached": 1, "computed": 1}
        assert payload["stages"]["plan.graph"]["count"] == 1

    def test_tail(self, trace_path, capsys):
        assert main(["obs", "tail", str(trace_path), "-n", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "spec.run"
        assert json.loads(lines[1])["type"] == "metrics"

    def test_tail_n_larger_than_file(self, trace_path, capsys):
        assert main(["obs", "tail", str(trace_path), "-n", "99"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 3

    def test_missing_trace_is_a_clean_error(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err
