"""Cross-layer observability acceptance tests.

The contract under test (ISSUE/PR 6):

* a traced ``run_spec`` produces a JSONL file from which
  ``summarize_trace`` reports per-stage wall time, the ledger hit rate,
  and per-cell cached/computed counts *exactly* matching the
  :class:`RunReport`;
* turning tracing off changes nothing — bitwise-identical results and
  digests;
* :meth:`RunLedger.stats` backs the ≥90 %-cache-hit CI assertion;
* :meth:`TransformService.stats` derives ``rows_per_sec`` /
  ``mean_latency_s`` from its histograms;
* instrumentation left *off* is effectively free (overhead guard).
"""

import json
import os
import time

import pytest

from repro import PFR
from repro.core import fit_path
from repro.experiments import RunSpec, run_spec
from repro.graphs import pairwise_judgment_graph
from repro.obs import (
    MetricsRegistry,
    get_registry,
    read_trace,
    set_registry,
    set_sinks,
    sinks,
    span,
    summarize_trace,
    trace_enabled,
    tracing,
)
from repro.serving import ModelRegistry, TransformService
from repro.store import RunLedger

_SPEC = {
    "name": "obs-accept",
    "datasets": [{"name": "synthetic", "scale": 0.3}],
    "methods": ["original", "pfr"],
    "gammas": [0.0, 0.5],
    "seeds": [0, 1],
    "harness": {"n_components": 2},
}


@pytest.fixture(autouse=True)
def _clean_tracing():
    """No sink leaks across tests; global registry restored."""
    set_sinks(())
    previous = set_registry(MetricsRegistry())
    yield
    for sink in sinks():
        sink.close()
    set_sinks(())
    set_registry(previous)


class TestTracedRunMatchesReport:
    def test_cold_then_warm_summary_matches_reports(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        store = tmp_path / "ledger"

        cold_trace = tmp_path / "cold.jsonl"
        with tracing(cold_trace):
            cold = run_spec(spec, store=store)
        warm_trace = tmp_path / "warm.jsonl"
        with tracing(warm_trace):
            warm = run_spec(spec, store=store)

        for report, path in ((cold, cold_trace), (warm, warm_trace)):
            summary = summarize_trace(read_trace(path))
            # The acceptance: trace-derived cell counts are exactly the
            # report's counts.
            assert summary["cells"] == {
                "total": report.n_total,
                "cached": report.n_cached,
                "computed": report.n_computed,
            }
            assert summary["cells"] == {
                "total": report.telemetry["cells"]["total"],
                "cached": report.telemetry["cells"]["cached"],
                "computed": report.telemetry["cells"]["computed"],
            }
            assert report.telemetry["trace_enabled"] is True
            assert report.telemetry["wall_s"] > 0.0

        cold_summary = summarize_trace(read_trace(cold_trace))
        assert cold.n_computed == cold.n_total
        # Per-stage wall time for the fit pipeline is present and sane.
        for stage in ("spec.run", "spec.cell", "plan.graph",
                      "plan.laplacian", "plan.projection", "plan.solve"):
            assert stage in cold_summary["stages"], stage
            assert cold_summary["stages"][stage]["total_s"] >= 0.0
        assert cold_summary["stages"]["spec.cell"]["count"] == cold.n_total
        # spec.run dominates its children.
        assert (cold_summary["stages"]["spec.run"]["total_s"]
                >= cold_summary["stages"]["spec.cell"]["total_s"])

        # Ledger accounting from the trace agrees with the report's
        # telemetry delta (this test scopes the registry, so trace
        # snapshots == the run's own delta).
        assert cold_summary["ledger"]["hits"] >= 0
        warm_summary = summarize_trace(read_trace(warm_trace))
        assert warm.n_cached == warm.n_total
        assert warm.telemetry["ledger"]["hit_rate"] == 1.0
        # Warm run: no cell computed, so no spec.cell spans.
        assert "spec.cell" not in warm_summary["stages"]

    def test_parallel_run_worker_spans_and_metrics(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        trace = tmp_path / "par.jsonl"
        with tracing(trace):
            report = run_spec(spec, store=tmp_path / "ledger", workers=2)
        records = read_trace(trace)
        summary = summarize_trace(records)
        assert summary["cells"] == {
            "total": report.n_total,
            "cached": 0,
            "computed": report.n_total,
        }
        # Worker processes contributed spans and metrics records.
        assert summary["processes"] >= 2
        task_spans = [r for r in records
                      if r.get("type") == "span"
                      and r.get("name") == "parallel.task"]
        assert task_spans
        parent_pid = os.getpid()
        assert any(r["pid"] != parent_pid for r in task_spans)
        worker_metrics = [r for r in records
                          if r.get("type") == "metrics"
                          and r.get("pid") != parent_pid]
        assert worker_metrics
        # Workers put their computed cells; those puts only show through
        # their metrics records, which the summary folds in.
        assert summary["ledger"]["puts"] == report.n_computed

    def test_cell_spans_carry_digests(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        trace = tmp_path / "run.jsonl"
        with tracing(trace):
            report = run_spec(spec, store=tmp_path / "ledger")
        cell_spans = [r for r in read_trace(trace)
                      if r.get("type") == "span"
                      and r.get("name") == "spec.cell"]
        traced_digests = {r["attrs"]["digest"] for r in cell_spans}
        assert traced_digests == {cell["digest"] for cell in report.cells}


class TestTracingChangesNothing:
    def test_bitwise_identical_results_and_digests(self, tmp_path):
        spec = RunSpec.from_dict(_SPEC)
        plain = run_spec(spec, store=tmp_path / "a")
        with tracing(tmp_path / "t.jsonl"):
            traced = run_spec(spec, store=tmp_path / "b")

        # Digest equality is the strong claim: telemetry never reaches
        # task identity, so the cells dicts (digest included) match.
        assert plain.cells == traced.cells

        plain_json = plain.to_json()
        traced_json = traced.to_json()
        plain_json.pop("telemetry")
        traced_json.pop("telemetry")
        assert (json.dumps(plain_json, sort_keys=True)
                == json.dumps(traced_json, sort_keys=True))

        for key in plain.results:
            a, b = plain.results[key], traced.results[key]
            assert a.auc == b.auc
            assert a.consistency_wx == b.consistency_wx
            assert a.consistency_wf == b.consistency_wf
            assert a.rates.gap("positive_rate") == b.rates.gap("positive_rate")

    def test_untraced_run_reports_trace_disabled(self, tmp_path):
        report = run_spec(
            RunSpec.from_dict(_SPEC), store=tmp_path / "ledger"
        )
        assert report.telemetry["trace_enabled"] is False
        assert report.telemetry["cells"]["total"] == report.n_total


class TestLedgerStats:
    def test_counts_and_latencies(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        entry = ledger.put({"kind": "method_result", "task": 1}, {"out": 1})
        digest = entry.digest
        assert ledger.contains(digest)          # hit
        assert not ledger.contains("0" * 64)    # miss
        assert ledger.get(digest) is not None   # hit
        stats = ledger.stats()
        assert stats["puts"] == 1
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["lookups"] == 3
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert stats["gets"] == 1
        assert stats["write_seconds"]["count"] == 1
        assert stats["read_seconds"]["count"] == 1

    def test_two_roots_are_independent_series(self, tmp_path):
        a = RunLedger(tmp_path / "a")
        b = RunLedger(tmp_path / "b")
        a.put({"kind": "method_result", "t": 1}, {"o": 1})
        assert a.stats()["puts"] == 1
        assert b.stats()["puts"] == 0

    def test_warm_rerun_delta_is_the_ci_assertion(self, tmp_path):
        # The CI smoke asserts ≥90% of the second run's lookups hit; the
        # measurement is a stats() delta around that run.
        spec = RunSpec.from_dict(_SPEC)
        ledger = RunLedger(tmp_path / "ledger")
        run_spec(spec, store=tmp_path / "ledger")
        before = ledger.stats()
        run_spec(spec, store=tmp_path / "ledger")
        after = ledger.stats()
        lookups = after["lookups"] - before["lookups"]
        hits = after["hits"] - before["hits"]
        assert lookups > 0
        assert hits / lookups >= 0.9


class TestServingStatsRegression:
    @pytest.fixture
    def service(self, rng, tmp_path):
        X = rng.normal(size=(60, 5))
        WF = pairwise_judgment_graph([(0, 1), (4, 9)], n=60)
        model = PFR(n_components=2, gamma=0.5, n_neighbors=4).fit(X, WF)
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("pfr", model)
        return TransformService(registry)

    def test_derived_rates_come_from_histograms(self, service, rng):
        for _ in range(3):
            service.transform("pfr", rng.normal(size=(8, 5)))
        stats = service.stats()
        entry = stats["models"]["pfr@1"]
        assert entry["requests"] == 3
        assert entry["rows"] == 24
        assert entry["seconds"] > 0.0
        # The satellite: throughput/latency derived once, from the
        # histogram, not hand-rolled counters.
        assert entry["rows_per_sec"] == pytest.approx(
            entry["rows"] / entry["seconds"]
        )
        assert entry["mean_latency_s"] == pytest.approx(
            entry["seconds"] / entry["requests"]
        )
        assert entry["rows_per_second"] == entry["rows_per_sec"]  # back-compat
        latency = entry["latency"]
        assert latency["count"] == 3
        assert latency["p50"] <= latency["p99"] <= latency["max"]
        totals = stats["totals"]
        assert totals["requests"] == 3
        assert totals["rows"] == 24
        assert totals["rows_per_sec"] == pytest.approx(
            totals["rows"] / totals["seconds"]
        )
        assert totals["mean_latency_s"] == pytest.approx(
            totals["seconds"] / totals["requests"]
        )

    def test_private_registry_by_default(self, service, rng):
        service.transform("pfr", rng.normal(size=(4, 5)))
        assert get_registry().total("serving.requests") == 0.0
        assert service.metrics.total("serving.requests") == 1.0

    def test_opt_in_global_registry(self, rng, tmp_path):
        X = rng.normal(size=(60, 5))
        WF = pairwise_judgment_graph([(0, 1), (4, 9)], n=60)
        model = PFR(n_components=2, gamma=0.5, n_neighbors=4).fit(X, WF)
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("pfr", model)
        service = TransformService(registry, metrics=get_registry())
        service.transform("pfr", rng.normal(size=(4, 5)))
        assert get_registry().total("serving.requests") == 1.0


class TestOverheadGuard:
    def test_disabled_span_is_cheap(self):
        # The hot-path cost with tracing off: one global load, a truth
        # test and a constant return. Budget: < 5 µs/call averaged over
        # 200k calls (two orders of magnitude above typical, so CI noise
        # cannot trip it).
        assert not trace_enabled()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            with span("guard.noop", gamma=0.5):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed / n < 5e-6, f"{elapsed / n * 1e9:.0f} ns per off-span"

    def test_fit_path_overhead_under_five_percent(self, rng):
        if len(os.sched_getaffinity(0)) < 2:
            pytest.skip(
                "single-CPU runner: wall-clock comparison is scheduling "
                "noise, not instrumentation overhead (disabled-span cost "
                "is covered by test_disabled_span_is_cheap)"
            )
        X = rng.normal(size=(120, 6))
        WF = pairwise_judgment_graph([(0, 1), (5, 9), (20, 40)], n=120)
        gammas = (0.0, 0.5, 1.0)

        template = PFR(n_components=2, n_neighbors=4)

        def once() -> float:
            start = time.perf_counter()
            fit_path(X, WF, gammas=gammas, estimator=template)
            return time.perf_counter() - start

        once()  # warm caches/allocators out of the measurement
        t_off = min(once() for _ in range(5))
        with tracing(os.devnull, metrics=False):
            t_on = min(once() for _ in range(5))
        # Tracing *on* within 5% (+5ms floor for tiny absolute times) of
        # off bounds the off-mode hooks too, since off does strictly less.
        assert t_on <= t_off * 1.05 + 0.005, (t_on, t_off)
