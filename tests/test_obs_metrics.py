"""Tests for repro.obs.metrics — counters, gauges, log-bucket histograms.

Includes the concurrency acceptance: N threads × M increments land on the
exact total, for counters and for histogram observation counts alike.
"""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    _BOUNDS,
    _bucket_index,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestBucketIndex:
    def test_invariant_holds_for_every_bound(self):
        # Exactly-on-a-bound values land in the bucket whose upper bound
        # they equal: _BOUNDS[i-1] < v <= _BOUNDS[i]. The very last bound
        # is the overflow threshold and lands in the catch-all bucket.
        for i, bound in enumerate(_BOUNDS[:-1]):
            index = _bucket_index(bound)
            assert bound <= _BOUNDS[index]
            if index > 0:
                assert bound > _BOUNDS[index - 1]
        assert _bucket_index(_BOUNDS[-1]) == len(_BOUNDS)

    def test_interior_values(self):
        for value in (1.5e-7, 3.7e-4, 0.0123, 1.0, 42.0, 999.0):
            index = _bucket_index(value)
            assert value <= _BOUNDS[index]
            if index > 0:
                assert value > _BOUNDS[index - 1]

    def test_edges_clamp(self):
        assert _bucket_index(0.0) == 0
        assert _bucket_index(1e-30) == 0
        assert _bucket_index(1e3) == len(_BOUNDS)
        assert _bucket_index(1e9) == len(_BOUNDS)


class TestHistogram:
    def test_empty_summary_is_zeros(self):
        summary = Histogram().summary()
        assert summary == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_single_value_reports_itself_at_every_quantile(self):
        hist = Histogram()
        hist.observe(0.037)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.037)

    def test_exact_moments(self):
        hist = Histogram()
        values = [0.001, 0.002, 0.003, 0.004, 0.1]
        for value in values:
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(sum(values), rel=1e-12)
        assert hist.min == 0.001
        assert hist.max == 0.1

    def test_quantiles_within_bucket_resolution(self):
        # 16 buckets/decade → adjacent bounds differ by 10^(1/16) ≈ 15%;
        # the log-interpolated quantile must land within one bucket width.
        hist = Histogram()
        for i in range(1000):
            hist.observe(0.001 + 0.001 * i / 1000)  # uniform on [1ms, 2ms)
        tolerance = 10.0 ** (1.0 / 16.0)
        p50 = hist.quantile(0.5)
        assert 0.0015 / tolerance <= p50 <= 0.0015 * tolerance
        assert hist.quantile(0.99) <= hist.max
        assert hist.quantile(0.01) >= hist.min

    def test_monotone_quantiles(self):
        hist = Histogram()
        for value in (1e-5, 3e-4, 2e-3, 0.4, 7.0):
            hist.observe(value)
        qs = [hist.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_kahan_sum_many_tiny_values(self):
        hist = Histogram()
        for _ in range(1_000_000):
            hist.observe(1e-7)
        assert hist.sum == pytest.approx(0.1, rel=1e-9)
        assert hist.count == 1_000_000

    def test_negative_and_nan_clamp_to_zero(self):
        hist = Histogram()
        hist.observe(-1.0)
        hist.observe(math.nan)
        assert hist.count == 2
        assert hist.min == 0.0
        assert hist.max == 0.0
        assert hist.sum == 0.0


class TestMetricsRegistry:
    def test_counter_basics(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 2.5)
        assert reg.counter_value("x") == 3.5
        assert reg.counter_value("never") == 0.0

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("hits", 1.0, root="/a")
        reg.inc("hits", 2.0, root="/b")
        assert reg.counter_value("hits", root="/a") == 1.0
        assert reg.counter_value("hits", root="/b") == 2.0
        assert reg.counter_value("hits") == 0.0  # unlabeled is its own series
        assert reg.total("hits") == 3.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", 1.0, a="1", b="2")
        assert reg.counter_value("x", b="2", a="1") == 1.0

    def test_gauges(self):
        reg = MetricsRegistry()
        assert reg.gauge_value("depth") is None
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.gauge_value("depth") == 7.0

    def test_histograms(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.1)
        reg.observe("lat", 0.3)
        summary = reg.histogram_summary("lat")
        assert summary["count"] == 2
        assert summary["sum"] == pytest.approx(0.4)
        assert reg.histogram_summary("never")["count"] == 0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.set_gauge("g", 1)
        reg.observe("h", 0.5)
        reg.reset()
        assert reg.counter_value("x") == 0.0
        assert reg.gauge_value("g") is None
        assert reg.histogram_summary("h")["count"] == 0

    def test_snapshot_is_sorted_json_and_deterministic(self):
        reg = MetricsRegistry()
        reg.inc("b", 1.0, z="2", a="1")
        reg.inc("a")
        reg.set_gauge("g", 4)
        reg.observe("h", 0.25)
        snap = reg.snapshot()
        # JSON-safe and byte-stable across identical states.
        assert json.dumps(snap, sort_keys=True)
        names = [entry["name"] for entry in snap["counters"]]
        assert names == sorted(names)
        twin = MetricsRegistry()
        twin.set_gauge("g", 4)
        twin.inc("a")
        twin.observe("h", 0.25)
        twin.inc("b", 1.0, a="1", z="2")
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            twin.snapshot(), sort_keys=True
        )

    def test_label_named_value_does_not_collide(self):
        # name/value are positional-only, so a label literally called
        # "value" stays a label.
        reg = MetricsRegistry()
        reg.inc("x", 1.0, value="label")
        assert reg.counter_value("x", value="label") == 1.0


class TestConcurrency:
    def test_threads_times_increments_exact_total(self):
        reg = MetricsRegistry()
        n_threads, m_increments = 8, 2000

        def worker():
            for _ in range(m_increments):
                reg.inc("hits")
                reg.inc("hits", 1.0, shard="a")
                reg.observe("lat", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == n_threads * m_increments
        assert reg.counter_value("hits", shard="a") == n_threads * m_increments
        assert reg.total("hits") == 2 * n_threads * m_increments
        summary = reg.histogram_summary("lat")
        assert summary["count"] == n_threads * m_increments
        assert summary["sum"] == pytest.approx(
            n_threads * m_increments * 0.001, rel=1e-9
        )


class TestGlobalRegistry:
    def test_default_registry_is_stable(self):
        assert get_registry() is get_registry()

    def test_set_registry_swaps_and_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
