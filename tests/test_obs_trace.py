"""Tests for repro.obs.trace — spans, sinks, JSONL durability.

Includes the cross-process acceptance: many worker processes appending
spans to one JSONL file concurrently never produce a corrupt line.
"""

import json
import multiprocessing
import threading

import pytest

from repro.obs.export import read_trace
from repro.obs.trace import (
    JSONLSink,
    RingBufferSink,
    _NULL_SPAN,
    add_sink,
    attach_worker_sinks,
    emit_event,
    emit_metrics,
    jsonl_paths,
    remove_sink,
    set_sinks,
    sinks,
    span,
    trace_enabled,
    tracing,
)


@pytest.fixture(autouse=True)
def _clean_sinks():
    """Every test starts and ends with tracing off."""
    set_sinks(())
    yield
    for sink in sinks():
        sink.close()
    set_sinks(())


@pytest.fixture
def ring():
    sink = RingBufferSink()
    add_sink(sink)
    return sink


class TestZeroCostWhenOff:
    def test_disabled_by_default(self):
        assert not trace_enabled()
        assert sinks() == ()

    def test_span_returns_shared_null_object(self):
        # Not merely "a no-op": the *same* object every time, so the off
        # path allocates nothing.
        a = span("x")
        b = span("y", gamma=0.5)
        assert a is b is _NULL_SPAN
        with a as s:
            s.set(ignored=1)  # must not raise

    def test_emitters_are_noops(self):
        emit_event("e", detail=1)
        emit_metrics()
        # nothing to assert beyond "did not raise": there is no sink

    def test_enabled_with_a_sink(self, ring):
        assert trace_enabled()
        assert not isinstance(span("x"), type(_NULL_SPAN))


class TestSpans:
    def test_record_shape(self, ring):
        with span("stage.one", gamma=0.5) as s:
            s.set(d=4)
        (record,) = ring.records()
        assert record["type"] == "span"
        assert record["name"] == "stage.one"
        assert record["status"] == "ok"
        assert record["duration_s"] >= 0.0
        assert record["parent_id"] is None
        assert record["attrs"] == {"gamma": 0.5, "d": 4}
        assert isinstance(record["pid"], int)

    def test_nesting_records_parent_ids(self, ring):
        with span("outer"):
            with span("inner"):
                pass
            with span("sibling"):
                pass
        # Records are emitted at span *exit*, so children precede the parent.
        inner, sibling, outer = ring.records()
        assert outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert sibling["parent_id"] == outer["span_id"]
        assert inner["span_id"] != sibling["span_id"] != outer["span_id"]

    def test_error_status_and_stack_unwind(self, ring):
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        (record,) = ring.records()
        assert record["status"] == "error"
        # The stack unwound: a fresh span is a root again.
        with span("after"):
            pass
        assert ring.records()[-1]["parent_id"] is None

    def test_threads_have_independent_stacks(self, ring):
        done = threading.Event()

        def other():
            with span("thread.child"):
                pass
            done.set()

        with span("main.parent"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {r["name"]: r for r in ring.records()}
        # The other thread's span must NOT claim main's open span as parent.
        assert by_name["thread.child"]["parent_id"] is None

    def test_name_attribute_key_does_not_collide(self, ring):
        with span("spec.run", name="my-spec"):
            pass
        (record,) = ring.records()
        assert record["name"] == "spec.run"
        assert record["attrs"] == {"name": "my-spec"}


class TestRingBufferSink:
    def test_capacity_keeps_latest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"i": i})
        assert [r["i"] for r in sink.records()] == [2, 3, 4]

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit({"a": 1})
        sink.clear()
        assert sink.records() == []


class TestJSONLSink:
    def test_whole_lines_sorted_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(path)
        sink.emit({"b": 2, "a": 1})
        sink.emit({"x": "y"})
        sink.close()
        lines = path.read_text().splitlines()
        assert lines[0] == '{"a": 1, "b": 2}'
        assert json.loads(lines[1]) == {"x": "y"}

    def test_append_not_truncate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for round_ in range(2):
            sink = JSONLSink(path)
            sink.emit({"round": round_})
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        sink = JSONLSink(path)
        sink.emit({"ok": 1})
        sink.close()
        assert path.is_file()

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        sink.emit({})
        sink.close()
        sink.close()


class TestSinkManagement:
    def test_add_remove(self):
        sink = RingBufferSink()
        add_sink(sink)
        assert trace_enabled()
        remove_sink(sink)
        assert not trace_enabled()
        remove_sink(sink)  # second removal is a no-op

    def test_every_sink_sees_every_record(self):
        a, b = RingBufferSink(), RingBufferSink()
        add_sink(a)
        add_sink(b)
        with span("x"):
            pass
        assert len(a.records()) == len(b.records()) == 1

    def test_jsonl_paths_lists_only_jsonl_sinks(self, tmp_path):
        add_sink(RingBufferSink())
        assert jsonl_paths() == ()
        sink = JSONLSink(tmp_path / "t.jsonl")
        add_sink(sink)
        assert jsonl_paths() == (str(tmp_path / "t.jsonl"),)

    def test_attach_worker_sinks_replaces_everything(self, tmp_path):
        add_sink(RingBufferSink())
        attach_worker_sinks([str(tmp_path / "w.jsonl")])
        assert jsonl_paths() == (str(tmp_path / "w.jsonl"),)
        assert len(sinks()) == 1
        attach_worker_sinks(())
        assert not trace_enabled()


class TestEmitters:
    def test_emit_event(self, ring):
        emit_event("checkpoint", step=3)
        (record,) = ring.records()
        assert record["type"] == "event"
        assert record["name"] == "checkpoint"
        assert record["attrs"] == {"step": 3}

    def test_emit_metrics_snapshots_registry(self, ring):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.inc("x", 3.0)
        emit_metrics(reg)
        (record,) = ring.records()
        assert record["type"] == "metrics"
        assert record["metrics"]["counters"][0]["value"] == 3.0


class TestTracingContext:
    def test_scopes_a_jsonl_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with tracing(path):
            assert trace_enabled()
            with span("inside"):
                pass
        assert not trace_enabled()
        records = read_trace(path)
        assert [r["type"] for r in records] == ["span", "metrics"]

    def test_metrics_false_skips_final_snapshot(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with tracing(path, metrics=False):
            with span("inside"):
                pass
        assert [r["type"] for r in read_trace(path)] == ["span"]

    def test_detaches_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with tracing(tmp_path / "run.jsonl"):
                raise RuntimeError("boom")
        assert not trace_enabled()


def _hammer_jsonl(path, worker_id, n_records):
    """Worker: emit n_records spans (with nesting) to the shared file."""
    attach_worker_sinks([path])
    for i in range(n_records):
        with span("mp.outer", worker=worker_id, i=i):
            with span("mp.inner"):
                pass
    set_sinks(())


class TestMultiProcessJSONL:
    def test_concurrent_processes_never_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "shared.jsonl")
        n_workers, n_records = 4, 200
        processes = [
            multiprocessing.Process(
                target=_hammer_jsonl, args=(path, w, n_records)
            )
            for w in range(n_workers)
        ]
        for p in processes:
            p.start()
        for p in processes:
            p.join()
        assert all(p.exitcode == 0 for p in processes)
        # read_trace raises on any interior corrupt line.
        records = read_trace(path)
        assert len(records) == n_workers * n_records * 2
        pids = {r["pid"] for r in records}
        assert len(pids) == n_workers
        inner = [r for r in records if r["name"] == "mp.inner"]
        # Nesting survived in every process: each inner has its pid's parent.
        by_id = {r["span_id"]: r for r in records}
        for record in inner:
            parent = by_id[record["parent_id"]]
            assert parent["name"] == "mp.outer"
            assert parent["pid"] == record["pid"]

    def test_concurrent_threads_never_corrupt_lines(self, tmp_path):
        path = tmp_path / "threads.jsonl"
        sink = JSONLSink(path)
        add_sink(sink)
        n_threads, n_records = 8, 100

        def worker(worker_id):
            for i in range(n_records):
                with span("t.span", worker=worker_id, i=i):
                    pass

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        records = read_trace(path)
        assert len(records) == n_threads * n_records
