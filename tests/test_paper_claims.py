"""Integration tests of the paper's qualitative claims (§4).

Each test pins one claim from the evaluation section, on a moderately
scaled-down workload so the whole module stays fast. These are the
reproduction's acceptance tests: if they pass, the shapes of every table
and figure hold. Paper-vs-measured numbers are recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import figure1, figure2, figure3, figure4, table1
from repro.experiments.figures import (
    _gamma_sweep_figure,
    _group_fairness_figure,
    _tradeoff_figure,
    REAL_METHODS,
)

SEED = 0


@pytest.fixture(scope="module")
def fig2():
    return figure2(scale=1.0, seed=SEED)


@pytest.fixture(scope="module")
def fig3():
    return figure3(scale=1.0, seed=SEED)


@pytest.fixture(scope="module")
def fig4():
    return figure4(scale=1.0, seed=SEED, gammas=(0.0, 0.3, 0.6, 0.9))


@pytest.fixture(scope="module")
def fig5():
    return _tradeoff_figure("figure5", "crime", REAL_METHODS, seed=SEED, scale=0.35)


@pytest.fixture(scope="module")
def fig6():
    return _group_fairness_figure(
        "figure6", "crime", REAL_METHODS + ("hardt+",), seed=SEED, scale=0.35
    )


@pytest.fixture(scope="module")
def fig7():
    return _gamma_sweep_figure(
        "figure7", "crime", seed=SEED, scale=0.35, gammas=(0.0, 0.5, 1.0)
    )


@pytest.fixture(scope="module")
def fig8():
    return _tradeoff_figure("figure8", "compas", REAL_METHODS, seed=SEED, scale=0.25)


@pytest.fixture(scope="module")
def fig9():
    return _group_fairness_figure(
        "figure9", "compas", REAL_METHODS + ("hardt+",), seed=SEED, scale=0.25
    )


@pytest.fixture(scope="module")
def fig10():
    return _gamma_sweep_figure(
        "figure10", "compas", seed=SEED, scale=0.25, gammas=(0.0, 0.5, 1.0)
    )


class TestTable1:
    def test_statistics_match_paper(self):
        rows = {r[0]: r for r in table1(scale=1.0, seed=SEED).data["rows"]}
        # Synthetic: 600 = 300 + 300, base rates ≈ 0.51 / 0.48.
        assert rows["synthetic"][1:4] == [600, 300, 300]
        assert rows["synthetic"][4] == pytest.approx(0.51, abs=0.06)
        assert rows["synthetic"][5] == pytest.approx(0.48, abs=0.06)
        # Crime: 1993 = 1423 + 570, base rates ≈ 0.35 / 0.86.
        assert rows["crime"][1:4] == [1993, 1423, 570]
        assert rows["crime"][4] == pytest.approx(0.35, abs=0.03)
        assert rows["crime"][5] == pytest.approx(0.86, abs=0.03)
        # Compas: 8803 = 4218 + 4585, base rates ≈ 0.41 / 0.55.
        assert rows["compas"][1:4] == [8803, 4218, 4585]
        assert rows["compas"][4] == pytest.approx(0.41, abs=0.03)
        assert rows["compas"][5] == pytest.approx(0.55, abs=0.03)


class TestFigure1Claims:
    """Q1: what do the learned representations look like?"""

    @pytest.fixture(scope="class")
    def geometry(self):
        return figure1(scale=1.0, seed=SEED).data["geometry"]

    def test_original_groups_separated(self, geometry):
        # "in the original data, the two groups are separated"
        assert geometry["original"]["cross_group_distance"] > 1.05

    def test_learned_representations_mix_groups(self, geometry):
        # "for all three representation learning techniques the green and
        #  orange data points are well-mixed". With untuned defaults iFair
        #  preserves the (non-protected) SAT shift by design, so the strict
        #  check is applied to LFR and PFR.
        for method in ("lfr", "pfr"):
            assert (
                geometry[method]["cross_group_distance"]
                < geometry["original"]["cross_group_distance"] - 0.2
            )

    def test_pfr_aligns_deserving_individuals(self, geometry):
        # "PFR succeeds in mapping the deserving candidates of one group
        #  close to the deserving candidates of the other group." LFR can
        #  reach a similar alignment number only by collapsing *all*
        #  structure (visible in its lower AUC, Figure 2); among methods
        #  that retain utility, PFR's alignment is unmatched.
        pfr = geometry["pfr"]["deserving_alignment"]
        assert pfr < geometry["original"]["deserving_alignment"] - 0.2
        assert pfr < geometry["ifair"]["deserving_alignment"] - 0.2
        assert pfr < 1.25  # deserving candidates of both groups nearly coincide


class TestFigure2Claims:
    """Q2/Q3 on synthetic data."""

    def test_pfr_wins_consistency_wf(self, fig2):
        results = fig2.data["results"]
        pfr = results["pfr"].consistency_wf
        assert pfr > results["original"].consistency_wf + 0.1
        assert pfr > results["lfr"].consistency_wf

    def test_pfr_best_auc_among_fair_methods(self, fig2):
        # "PFR achieves by far the best AUC" (fairness graph aligned with
        # ground truth). We require PFR to be at least on par with every
        # other method.
        results = fig2.data["results"]
        assert results["pfr"].auc >= results["original"].auc - 0.02
        assert results["pfr"].auc >= results["lfr"].auc - 0.02

    def test_all_methods_high_consistency_wx(self, fig2):
        for result in fig2.data["results"].values():
            assert result.consistency_wx > 0.6


class TestFigure3Claims:
    """Q4 on synthetic data."""

    def test_original_has_substantial_gaps(self, fig3):
        original = fig3.data["results"]["original"].rates
        assert original.gap("positive_rate") > 0.2

    def test_pfr_improves_group_fairness_over_original(self, fig3):
        results = fig3.data["results"]
        assert (
            results["pfr"].rates.gap("positive_rate")
            < results["original"].rates.gap("positive_rate")
        )
        assert (
            results["pfr"].rates.gap("fnr")
            < results["original"].rates.gap("fnr")
        )

    def test_hardt_balances_error_rates(self, fig3):
        hardt = fig3.data["results"]["hardt"].rates
        assert hardt.gap("fpr") < 0.15
        assert hardt.gap("fnr") < 0.25


class TestFigure4Claims:
    """Q5 on synthetic data: the γ sweep."""

    def test_consistency_wf_increases(self, fig4):
        series = fig4.data["series"]["consistency_wf"]
        assert series[-1] > series[0] + 0.2

    def test_consistency_wx_decreases(self, fig4):
        series = fig4.data["series"]["consistency_wx"]
        assert series[-1] < series[0]

    def test_auc_increases_with_gamma(self, fig4):
        # The synthetic fairness graph reflects true deservingness, so
        # "as γ increases, the AUC of PFR increases".
        series = fig4.data["series"]["auc_any"]
        assert series[-1] > series[0] + 0.05


class TestFigure5Claims:
    """Crime: utility vs. individual fairness."""

    def test_pfr_wins_consistency_wf(self, fig5):
        results = fig5.data["results"]
        best_baseline = max(
            results[m].consistency_wf for m in results if m != "pfr"
        )
        assert results["pfr"].consistency_wf > best_baseline

    def test_pfr_pays_some_auc(self, fig5):
        # "The improvement in individual fairness regarding WF comes with a
        #  drop in utility"
        results = fig5.data["results"]
        assert results["pfr"].auc < results["original+"].auc

    def test_all_aucs_informative(self, fig5):
        for result in fig5.data["results"].values():
            assert result.auc > 0.55


class TestFigure6Claims:
    """Crime: group fairness."""

    def test_pfr_beats_baselines_on_parity(self, fig6):
        results = fig6.data["results"]
        for method in ("original+", "ifair+"):
            assert (
                results["pfr"].rates.gap("positive_rate")
                < results[method].rates.gap("positive_rate")
            )

    def test_pfr_error_balance_comparable_to_hardt(self, fig6):
        # "it achieves nearly equal error rates comparable to the Hardt
        #  model" — compared on the mean of the FPR and FNR gaps. On this
        #  simulator Hardt+ equalizes nearly exactly (better than in the
        #  paper), so comparability is asserted within 0.1; PFR's residual
        #  FPR gap on the extreme-base-rate Crime workload is recorded in
        #  EXPERIMENTS.md.
        results = fig6.data["results"]
        pfr_mean = 0.5 * (
            results["pfr"].rates.gap("fpr") + results["pfr"].rates.gap("fnr")
        )
        hardt_mean = 0.5 * (
            results["hardt+"].rates.gap("fpr")
            + results["hardt+"].rates.gap("fnr")
        )
        assert pfr_mean <= hardt_mean + 0.1
        # Versus the unconstrained baselines the improvement is an order of
        # magnitude.
        for method in ("original+", "ifair+"):
            baseline = results[method].rates
            baseline_mean = 0.5 * (baseline.gap("fpr") + baseline.gap("fnr"))
            assert pfr_mean < 0.4 * baseline_mean

    def test_original_heavily_biased(self, fig6):
        original = fig6.data["results"]["original+"].rates
        assert original.gap("positive_rate") > 0.4


class TestFigure7Claims:
    """Crime: γ sweep."""

    def test_overall_auc_decreases(self, fig7):
        series = fig7.data["series"]["auc_any"]
        assert series[-1] < series[0]

    def test_protected_auc_gap_narrows(self, fig7):
        # "there is an improvement in AUC for the protected group, and the
        #  gap in AUC between the groups decreases"
        s0 = fig7.data["series"]["auc_s0"]
        s1 = fig7.data["series"]["auc_s1"]
        gap_start = abs(s0[0] - s1[0])
        gap_end = abs(s0[-1] - s1[-1])
        assert gap_end < gap_start

    def test_protected_auc_improves(self, fig7):
        s1 = fig7.data["series"]["auc_s1"]
        assert s1[-1] > s1[0]


class TestFigure8Claims:
    """Compas: utility vs. individual fairness.

    The paper's §4.3.3 claim for COMPAS is *similarity*: "PFR performs
    similarly as the other representation learning methods in terms of
    utility and individual fairness"; the clear wins are on group fairness
    (Figure 9).
    """

    def test_pfr_individual_fairness_similar_or_better(self, fig8):
        results = fig8.data["results"]
        for method, result in results.items():
            if method == "pfr":
                continue
            assert results["pfr"].consistency_wf >= result.consistency_wf - 0.08

    def test_pfr_beats_unconstrained_baselines_on_wf(self, fig8):
        # Against the baselines that do not collapse toward parity, PFR's
        # decile-graph alignment shows up directly in Consistency(WF).
        results = fig8.data["results"]
        assert results["pfr"].consistency_wf > results["original+"].consistency_wf
        assert results["pfr"].consistency_wf > results["ifair+"].consistency_wf

    def test_pfr_auc_comparable(self, fig8):
        results = fig8.data["results"]
        assert results["pfr"].auc > results["original+"].auc - 0.05


class TestFigure9Claims:
    """Compas: group fairness."""

    def test_pfr_near_equal_positive_rates(self, fig9):
        assert fig9.data["results"]["pfr"].rates.gap("positive_rate") < 0.12

    def test_pfr_as_good_as_hardt(self, fig9):
        results = fig9.data["results"]
        pfr_worst = max(
            results["pfr"].rates.gap("fpr"), results["pfr"].rates.gap("fnr")
        )
        hardt_worst = max(
            results["hardt+"].rates.gap("fpr"),
            results["hardt+"].rates.gap("fnr"),
        )
        assert pfr_worst <= hardt_worst + 0.05

    def test_pfr_beats_unconstrained_baselines(self, fig9):
        results = fig9.data["results"]
        for method in ("original+", "ifair+"):
            assert (
                results["pfr"].rates.gap("positive_rate")
                < results[method].rates.gap("positive_rate")
            )


class TestFigure10Claims:
    """Compas: γ sweep."""

    def test_consistency_wf_increases(self, fig10):
        series = fig10.data["series"]["consistency_wf"]
        assert series[-1] > series[0]

    def test_consistency_wx_decreases(self, fig10):
        series = fig10.data["series"]["consistency_wx"]
        assert series[-1] < series[0]

    def test_parity_improves_with_gamma(self, fig10):
        sweep = fig10.data["sweep"]
        assert (
            sweep[-1].rates.gap("positive_rate")
            < sweep[0].rates.gap("positive_rate") + 1e-9
        )

    def test_group_auc_gap_does_not_widen(self, fig10):
        s0 = fig10.data["series"]["auc_s0"]
        s1 = fig10.data["series"]["auc_s1"]
        assert abs(s0[-1] - s1[-1]) <= abs(s0[0] - s1[0]) + 0.02
