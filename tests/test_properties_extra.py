"""Additional hypothesis property tests across the library's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EqualizedOddsPostProcessor
from repro.core import PFR
from repro.graphs import (
    between_group_quantile_graph,
    equivalence_class_graph,
    graph_summary,
    knn_graph,
)
from repro.ml import (
    OneHotEncoder,
    train_test_split,
)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(10, 60),
    base_flip=st.floats(0.05, 0.45),
)
def test_hardt_lp_always_feasible_property(seed, n, base_flip):
    """For any base predictor with both classes in both groups, the
    equalized-odds LP is feasible and the expected post-processed TPR/FPR
    are exactly equal across groups."""
    rng = np.random.default_rng(seed)
    s = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    y = np.concatenate([
        np.tile([0, 1], n // 2 + 1)[:n],
        np.tile([0, 1], n // 2 + 1)[:n],
    ])
    flips = rng.random(2 * n) < base_flip
    y_pred = np.where(flips, 1 - y, y)
    # ensure both prediction values occur in each (group, class) cell is not
    # required — only both classes per group, which holds by construction.
    post = EqualizedOddsPostProcessor(seed=0).fit(y, y_pred, s)

    expected = {}
    for group in (0, 1):
        members = s == group
        p0, p1 = post.mix_probabilities_[group]
        base_tpr = y_pred[members & (y == 1)].mean()
        base_fpr = y_pred[members & (y == 0)].mean()
        expected[group] = (
            p1 * base_tpr + p0 * (1 - base_tpr),
            p1 * base_fpr + p0 * (1 - base_fpr),
        )
    assert expected[0][0] == pytest.approx(expected[1][0], abs=1e-6)
    assert expected[0][1] == pytest.approx(expected[1][1], abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), gamma=st.floats(0.0, 1.0))
def test_pfr_z_constraint_b_orthonormality_property(seed, gamma):
    """In the default constraint mode, ZᵀZ = I holds at any γ."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(35, 4))
    scores = rng.random(35)
    groups = np.arange(35) % 2
    WF = between_group_quantile_graph(scores, groups, n_quantiles=3)
    model = PFR(n_components=2, gamma=gamma, n_neighbors=4, ridge=0.0).fit(X, WF)
    Z = model.transform(X)
    np.testing.assert_allclose(Z.T @ Z, np.eye(2), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(12, 80),
    test_size=st.floats(0.15, 0.5),
)
def test_train_test_split_stratification_property(seed, n, test_size):
    """Stratified splits keep each class within one sample of its quota."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    if len(np.unique(y)) < 2:
        y[0] = 1 - y[0]
    n_test = int(round(n * test_size))
    if n_test == 0 or n_test == n:
        return
    y_train, y_test = train_test_split(y, test_size=test_size,
                                       stratify=y, seed=seed)
    assert len(y_test) == n_test
    for value in (0, 1):
        quota = np.sum(y == value) * test_size
        assert abs(np.sum(y_test == value) - quota) <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(3, 50),
    n_categories=st.integers(1, 5),
)
def test_one_hot_recovers_categories_property(seed, n, n_categories):
    """argmax of the one-hot block recovers the original category codes."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, n_categories, size=(n, 1))
    encoder = OneHotEncoder().fit(codes)
    Z = encoder.transform(codes)
    seen = np.unique(codes)
    recovered = seen[np.argmax(Z, axis=1)]
    np.testing.assert_array_equal(recovered, codes.ravel())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
def test_knn_graph_summary_invariants_property(seed, k):
    """Any k-NN graph: symmetric, no isolated nodes, degree >= k."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(25, 3))
    W = knn_graph(X, n_neighbors=k)
    summary = graph_summary(W)
    assert summary["n_isolated"] == 0
    assert summary["n_edges"] >= (25 * k) // 2
    degrees = np.asarray((W != 0).sum(axis=1)).ravel()
    assert degrees.min() >= k


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 60),
    n_classes=st.integers(1, 6),
)
def test_equivalence_graph_component_structure_property(seed, n, n_classes):
    """An equivalence-class graph's non-trivial components are exactly the
    classes with >= 2 members."""
    rng = np.random.default_rng(seed)
    classes = rng.integers(0, n_classes, size=n)
    W = equivalence_class_graph(classes)
    summary = graph_summary(W)
    values, counts = np.unique(classes, return_counts=True)
    n_nontrivial = int(np.sum(counts >= 2))
    n_singletons = int(np.sum(counts == 1))
    assert summary["n_components"] == n_nontrivial + n_singletons
    assert summary["n_isolated"] == n_singletons
