"""Optimized code vs. obviously-correct reference implementations.

Each optimized routine in the library (midrank AUC, Laplacian-based
pairwise loss, sparse consistency, KD-tree k-NN graph) is checked against
a brute-force implementation whose correctness is evident from its shape.
"""

import numpy as np
import pytest

from repro.core import pairwise_loss
from repro.graphs import knn_graph, laplacian, quantile_bucket
from repro.metrics import consistency
from repro.ml import roc_auc_score


def reference_auc(y_true, y_score) -> float:
    """AUC as the literal probability of correct pairwise ranking."""
    positives = np.flatnonzero(y_true == 1)
    negatives = np.flatnonzero(y_true == 0)
    wins = 0.0
    for p in positives:
        for n in negatives:
            if y_score[p] > y_score[n]:
                wins += 1.0
            elif y_score[p] == y_score[n]:
                wins += 0.5
    return wins / (len(positives) * len(negatives))


def reference_consistency(y_pred, W) -> float:
    """Consistency as the literal double sum of the paper's formula."""
    W = np.asarray(W, dtype=np.float64)
    n = len(y_pred)
    numerator, denominator = 0.0, 0.0
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            numerator += abs(float(y_pred[i]) - float(y_pred[j])) * W[i, j]
            denominator += W[i, j]
    return 1.0 - numerator / denominator if denominator else 1.0


def reference_pairwise_loss(Z, W) -> float:
    """Σ_ij ||z_i - z_j||² W_ij by direct enumeration."""
    W = np.asarray(W, dtype=np.float64)
    Z = np.asarray(Z, dtype=np.float64)
    total = 0.0
    for i in range(len(Z)):
        for j in range(len(Z)):
            total += W[i, j] * float(np.sum((Z[i] - Z[j]) ** 2))
    return total


def reference_knn_edges(X, k):
    """Symmetric k-NN edge set by brute-force distance sorting."""
    X = np.asarray(X, dtype=np.float64)
    n = len(X)
    D = ((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(D, np.inf)
    edges = set()
    for i in range(n):
        for j in np.argsort(D[i], kind="stable")[:k]:
            edges.add((min(i, int(j)), max(i, int(j))))
    return edges


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_auc_matches_reference(seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, 60)
    y[:2] = [0, 1]
    scores = np.round(rng.random(60), 2)  # ties included
    assert roc_auc_score(y, scores) == pytest.approx(reference_auc(y, scores))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_consistency_matches_reference(seed):
    rng = np.random.default_rng(seed)
    n = 25
    W = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    W = 0.5 * (W + W.T)
    np.fill_diagonal(W, 0.0)
    y = rng.integers(0, 2, n)
    assert consistency(y, W) == pytest.approx(reference_consistency(y, W))


@pytest.mark.parametrize("seed", [0, 1])
def test_pairwise_loss_matches_reference(seed):
    rng = np.random.default_rng(seed)
    Z = rng.normal(size=(18, 3))
    W = rng.random((18, 18)) * (rng.random((18, 18)) < 0.5)
    W = 0.5 * (W + W.T)
    np.fill_diagonal(W, 0.0)
    assert pairwise_loss(Z, W) == pytest.approx(
        reference_pairwise_loss(Z, W), rel=1e-9
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_knn_graph_matches_reference_edges(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(30, 3))
    W = knn_graph(X, n_neighbors=4, binary=True)
    rows, cols = W.nonzero()
    observed = {(min(i, j), max(i, j)) for i, j in zip(rows.tolist(), cols.tolist())}
    assert observed == reference_knn_edges(X, 4)


def test_laplacian_quadratic_form_reference(rng):
    W = rng.random((12, 12)) * (rng.random((12, 12)) < 0.5)
    W = 0.5 * (W + W.T)
    np.fill_diagonal(W, 0.0)
    L = laplacian(W).toarray()
    x = rng.normal(size=12)
    direct = 0.5 * sum(
        W[i, j] * (x[i] - x[j]) ** 2 for i in range(12) for j in range(12)
    )
    assert float(x @ L @ x) == pytest.approx(direct, rel=1e-9)


def test_quantile_bucket_matches_sorted_slices():
    rng = np.random.default_rng(5)
    scores = rng.normal(size=40)  # distinct with probability 1
    buckets = quantile_bucket(scores, 4)
    order = np.argsort(scores)
    expected = np.empty(40, dtype=int)
    expected[order] = np.repeat(np.arange(4), 10)
    np.testing.assert_array_equal(buckets, expected)
