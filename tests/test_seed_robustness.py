"""Seed robustness of the headline claims.

The paper-claims tests (test_paper_claims.py) pin every figure at seed 0;
this module re-checks the most important directional claims on two more
seeds at a moderate scale, so the reproduction cannot hinge on one lucky
draw.
"""

import pytest

from repro.experiments import ExperimentHarness
from repro.experiments import make_workload

SEEDS = (1, 2)


@pytest.mark.parametrize("seed", SEEDS)
class TestSyntheticAcrossSeeds:
    def test_pfr_beats_original_on_wf_and_auc(self, seed):
        data = make_workload("synthetic", seed=seed, scale=1.0)
        harness = ExperimentHarness(data, seed=seed, n_components=2)
        pfr = harness.run_method("pfr", gamma=0.9)
        original = harness.run_method("original")
        assert pfr.consistency_wf > original.consistency_wf + 0.05
        assert pfr.auc >= original.auc - 0.02

    def test_gamma_direction(self, seed):
        data = make_workload("synthetic", seed=seed, scale=1.0)
        harness = ExperimentHarness(data, seed=seed, n_components=2)
        low = harness.run_method("pfr", gamma=0.0)
        high = harness.run_method("pfr", gamma=0.9)
        assert high.consistency_wf > low.consistency_wf
        assert high.auc > low.auc


@pytest.mark.parametrize("seed", SEEDS)
class TestCrimeAcrossSeeds:
    def test_pfr_improves_group_fairness(self, seed):
        data = make_workload("crime", seed=seed, scale=0.35)
        harness = ExperimentHarness(data, seed=seed, n_components=2)
        pfr = harness.run_method("pfr", gamma=1.0)
        original = harness.run_method("original+")
        assert (
            pfr.rates.gap("positive_rate")
            < original.rates.gap("positive_rate") - 0.2
        )
        assert pfr.rates.gap("fnr") < original.rates.gap("fnr")

    def test_gamma_trades_utility_for_fairness(self, seed):
        data = make_workload("crime", seed=seed, scale=0.35)
        harness = ExperimentHarness(data, seed=seed, n_components=2)
        low = harness.run_method("pfr", gamma=0.0)
        high = harness.run_method("pfr", gamma=1.0)
        assert high.auc < low.auc
        assert (
            high.rates.gap("positive_rate") < low.rates.gap("positive_rate")
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestCompasAcrossSeeds:
    def test_pfr_group_fairness_wins(self, seed):
        data = make_workload("compas", seed=seed, scale=0.25)
        harness = ExperimentHarness(data, seed=seed, n_components=3)
        pfr = harness.run_method("pfr", gamma=1.0)
        original = harness.run_method("original+")
        assert pfr.rates.gap("positive_rate") < 0.15
        assert (
            pfr.rates.gap("positive_rate")
            < original.rates.gap("positive_rate")
        )

    def test_consistency_directions(self, seed):
        data = make_workload("compas", seed=seed, scale=0.25)
        harness = ExperimentHarness(data, seed=seed, n_components=3)
        low = harness.run_method("pfr", gamma=0.0)
        high = harness.run_method("pfr", gamma=1.0)
        assert high.consistency_wf > low.consistency_wf
        assert high.consistency_wx < low.consistency_wx
