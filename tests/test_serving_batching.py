"""Tests for repro.serving.batching — chunked bulk and micro-batched paths."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving import BatchTransformer, MicroBatcher


class RecordingModel:
    """Linear transform that records every batch size it sees."""

    def __init__(self, V):
        self.V = V
        self.batch_sizes = []

    def transform(self, X):
        X = np.asarray(X)
        self.batch_sizes.append(X.shape[0])
        return X @ self.V


@pytest.fixture
def model(rng):
    return RecordingModel(rng.normal(size=(6, 3)))


class TestBatchTransformer:
    def test_small_input_single_call(self, model, rng):
        X = rng.normal(size=(10, 6))
        Z = BatchTransformer(model, chunk_size=64).transform(X)
        np.testing.assert_allclose(Z, X @ model.V)
        assert model.batch_sizes == [10]

    def test_large_input_chunked(self, model, rng):
        X = rng.normal(size=(25, 6))
        Z = BatchTransformer(model, chunk_size=10).transform(X)
        np.testing.assert_allclose(Z, X @ model.V)
        assert model.batch_sizes == [10, 10, 5]

    def test_exact_multiple(self, model, rng):
        X = rng.normal(size=(20, 6))
        BatchTransformer(model, chunk_size=10).transform(X)
        assert model.batch_sizes == [10, 10]

    def test_bad_chunk_size(self, model):
        with pytest.raises(ValidationError, match="chunk_size"):
            BatchTransformer(model, chunk_size=0)

    def test_rejects_1d(self, model, rng):
        with pytest.raises(ValidationError, match="2-dimensional"):
            BatchTransformer(model).transform(rng.normal(size=6))


class TestMicroBatcher:
    def test_single_submit(self, model, rng):
        row = rng.normal(size=6)
        with MicroBatcher(model.transform, max_wait=0.001) as batcher:
            result = batcher.submit(row)
        np.testing.assert_allclose(result, row @ model.V)

    def test_concurrent_submits_coalesce(self, model, rng):
        X = rng.normal(size=(24, 6))
        barrier = threading.Barrier(24)
        results = [None] * 24

        def client(i):
            barrier.wait()
            results[i] = batcher.submit(X[i])

        with MicroBatcher(model.transform, max_batch_size=32,
                          max_wait=0.05) as batcher:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(24)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats

        np.testing.assert_allclose(np.stack(results), X @ model.V)
        assert stats["n_rows"] == 24
        # Concurrent arrivals must have shared vectorized calls.
        assert stats["n_batches"] < 24
        assert stats["mean_batch_size"] > 1.0

    def test_max_batch_size_respected(self, model, rng):
        X = rng.normal(size=(10, 6))
        with MicroBatcher(model.transform, max_batch_size=4,
                          max_wait=0.05) as batcher:
            threads = [
                threading.Thread(target=lambda i=i: batcher.submit(X[i]))
                for i in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert max(model.batch_sizes) <= 4

    def test_error_propagates_to_caller(self):
        def broken(X):
            raise RuntimeError("backend down")

        with MicroBatcher(broken, max_wait=0.001) as batcher:
            with pytest.raises(RuntimeError, match="backend down"):
                batcher.submit(np.zeros(3))

    def test_submit_rejects_matrix(self, model, rng):
        with MicroBatcher(model.transform) as batcher:
            with pytest.raises(ValidationError, match="1-D"):
                batcher.submit(rng.normal(size=(2, 6)))

    def test_closed_batcher_rejects_submits(self, model, rng):
        batcher = MicroBatcher(model.transform)
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(ValidationError, match="closed"):
            batcher.submit(rng.normal(size=6))

    def test_bad_parameters(self, model):
        with pytest.raises(ValidationError, match="max_batch_size"):
            MicroBatcher(model.transform, max_batch_size=0)
        with pytest.raises(ValidationError, match="max_wait"):
            MicroBatcher(model.transform, max_wait=-1.0)

    def test_wrong_width_rejected_at_submit(self, model, rng):
        # One bad row must fail alone, not poison a coalesced batch.
        with MicroBatcher(model.transform, n_features=6,
                          max_wait=0.02) as batcher:
            with pytest.raises(ValidationError, match="schema mismatch"):
                batcher.submit(rng.normal(size=5))
            good = rng.normal(size=6)
            np.testing.assert_allclose(batcher.submit(good), good @ model.V)

    def test_row_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda X: X[:0], max_wait=0.001) as batcher:
            with pytest.raises(ValidationError, match="rows for a batch"):
                batcher.submit(np.zeros(3))


class TestWorkerDeath:
    """Regression: a BaseException in transform_fn used to kill the worker
    silently — the interrupted batch's callers got ``None`` back and every
    *future* submit() parked forever on ``done.wait()``."""

    @staticmethod
    def _submit_in_thread(batcher, row, timeout=5.0):
        """Run submit() off-thread so a regression hangs the helper thread,
        not the test; return (outcome, value)."""
        box = {}

        def call():
            try:
                box["result"] = batcher.submit(row)
            except BaseException as exc:  # noqa: BLE001 - the point of the test
                box["error"] = exc

        thread = threading.Thread(target=call, daemon=True)
        thread.start()
        thread.join(timeout)
        assert not thread.is_alive(), "submit() hung — worker death not fanned out"
        return box

    def test_base_exception_reaches_caller(self):
        def interrupted(X):
            raise KeyboardInterrupt("ctrl-c mid-batch")

        batcher = MicroBatcher(interrupted, max_wait=0.001)
        box = self._submit_in_thread(batcher, np.zeros(3))
        assert isinstance(box.get("error"), KeyboardInterrupt)

    def test_submit_after_worker_death_raises_instead_of_hanging(self):
        def interrupted(X):
            raise KeyboardInterrupt

        batcher = MicroBatcher(interrupted, max_wait=0.001)
        self._submit_in_thread(batcher, np.zeros(3))  # kills the worker
        batcher._worker.join(5.0)
        assert not batcher._worker.is_alive()
        # The batcher is now closed: later submits fail fast with a
        # diagnostic instead of blocking forever on a dead worker.
        box = self._submit_in_thread(batcher, np.zeros(3))
        error = box.get("error")
        assert isinstance(error, ValidationError)
        assert "worker died" in str(error)
        batcher.close()  # still idempotent after an abort

    def test_queued_requests_fail_when_worker_dies(self):
        release = threading.Event()
        calls = []

        def slow_then_dead(X):
            calls.append(X.shape[0])
            release.wait(5.0)
            raise SystemExit

        batcher = MicroBatcher(slow_then_dead, max_batch_size=1,
                               max_wait=0.0)
        boxes = [{} for _ in range(3)]

        def call(box):
            try:
                box["result"] = batcher.submit(np.zeros(3))
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc

        threads = [
            threading.Thread(target=call, args=(box,), daemon=True)
            for box in boxes
        ]
        threads[0].start()
        while not calls:  # first request is inside transform_fn
            time.sleep(0.001)
        for thread in threads[1:]:  # these queue up behind it
            thread.start()
        while batcher._queue.qsize() < 2:
            time.sleep(0.001)
        release.set()  # first batch now dies on SystemExit
        for thread in threads:
            thread.join(5.0)
            assert not thread.is_alive(), "queued submit hung after worker death"
        errors = [box.get("error") for box in boxes]
        assert isinstance(errors[0], SystemExit)
        for error in errors[1:]:
            assert isinstance(error, ValidationError)
            assert "worker died" in str(error)
