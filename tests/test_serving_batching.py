"""Tests for repro.serving.batching — chunked bulk and micro-batched paths."""

import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving import BatchTransformer, MicroBatcher


class RecordingModel:
    """Linear transform that records every batch size it sees."""

    def __init__(self, V):
        self.V = V
        self.batch_sizes = []

    def transform(self, X):
        X = np.asarray(X)
        self.batch_sizes.append(X.shape[0])
        return X @ self.V


@pytest.fixture
def model(rng):
    return RecordingModel(rng.normal(size=(6, 3)))


class TestBatchTransformer:
    def test_small_input_single_call(self, model, rng):
        X = rng.normal(size=(10, 6))
        Z = BatchTransformer(model, chunk_size=64).transform(X)
        np.testing.assert_allclose(Z, X @ model.V)
        assert model.batch_sizes == [10]

    def test_large_input_chunked(self, model, rng):
        X = rng.normal(size=(25, 6))
        Z = BatchTransformer(model, chunk_size=10).transform(X)
        np.testing.assert_allclose(Z, X @ model.V)
        assert model.batch_sizes == [10, 10, 5]

    def test_exact_multiple(self, model, rng):
        X = rng.normal(size=(20, 6))
        BatchTransformer(model, chunk_size=10).transform(X)
        assert model.batch_sizes == [10, 10]

    def test_bad_chunk_size(self, model):
        with pytest.raises(ValidationError, match="chunk_size"):
            BatchTransformer(model, chunk_size=0)

    def test_rejects_1d(self, model, rng):
        with pytest.raises(ValidationError, match="2-dimensional"):
            BatchTransformer(model).transform(rng.normal(size=6))


class TestMicroBatcher:
    def test_single_submit(self, model, rng):
        row = rng.normal(size=6)
        with MicroBatcher(model.transform, max_wait=0.001) as batcher:
            result = batcher.submit(row)
        np.testing.assert_allclose(result, row @ model.V)

    def test_concurrent_submits_coalesce(self, model, rng):
        X = rng.normal(size=(24, 6))
        barrier = threading.Barrier(24)
        results = [None] * 24

        def client(i):
            barrier.wait()
            results[i] = batcher.submit(X[i])

        with MicroBatcher(model.transform, max_batch_size=32,
                          max_wait=0.05) as batcher:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(24)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats

        np.testing.assert_allclose(np.stack(results), X @ model.V)
        assert stats["n_rows"] == 24
        # Concurrent arrivals must have shared vectorized calls.
        assert stats["n_batches"] < 24
        assert stats["mean_batch_size"] > 1.0

    def test_max_batch_size_respected(self, model, rng):
        X = rng.normal(size=(10, 6))
        with MicroBatcher(model.transform, max_batch_size=4,
                          max_wait=0.05) as batcher:
            threads = [
                threading.Thread(target=lambda i=i: batcher.submit(X[i]))
                for i in range(10)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert max(model.batch_sizes) <= 4

    def test_error_propagates_to_caller(self):
        def broken(X):
            raise RuntimeError("backend down")

        with MicroBatcher(broken, max_wait=0.001) as batcher:
            with pytest.raises(RuntimeError, match="backend down"):
                batcher.submit(np.zeros(3))

    def test_submit_rejects_matrix(self, model, rng):
        with MicroBatcher(model.transform) as batcher:
            with pytest.raises(ValidationError, match="1-D"):
                batcher.submit(rng.normal(size=(2, 6)))

    def test_closed_batcher_rejects_submits(self, model, rng):
        batcher = MicroBatcher(model.transform)
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(ValidationError, match="closed"):
            batcher.submit(rng.normal(size=6))

    def test_bad_parameters(self, model):
        with pytest.raises(ValidationError, match="max_batch_size"):
            MicroBatcher(model.transform, max_batch_size=0)
        with pytest.raises(ValidationError, match="max_wait"):
            MicroBatcher(model.transform, max_wait=-1.0)

    def test_wrong_width_rejected_at_submit(self, model, rng):
        # One bad row must fail alone, not poison a coalesced batch.
        with MicroBatcher(model.transform, n_features=6,
                          max_wait=0.02) as batcher:
            with pytest.raises(ValidationError, match="schema mismatch"):
                batcher.submit(rng.normal(size=5))
            good = rng.normal(size=6)
            np.testing.assert_allclose(batcher.submit(good), good @ model.V)

    def test_row_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda X: X[:0], max_wait=0.001) as batcher:
            with pytest.raises(ValidationError, match="rows for a batch"):
                batcher.submit(np.zeros(3))
