"""Tests for repro.serving.cache — digests and the LRU result cache."""

import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving import LRUCache, matrix_digests, row_digest


class TestRowDigest:
    def test_deterministic(self, rng):
        row = rng.normal(size=7)
        assert row_digest(row) == row_digest(row.copy())

    def test_dtype_and_layout_canonicalized(self, rng):
        row = rng.normal(size=6)
        assert row_digest(row) == row_digest(list(row))
        assert row_digest(row) == row_digest(row.astype(np.float64))
        strided = np.vstack([row, row])[::2][0]
        assert row_digest(row) == row_digest(strided)

    def test_different_rows_differ(self, rng):
        a = rng.normal(size=5)
        b = a.copy()
        b[2] += 1e-9
        assert row_digest(a) != row_digest(b)

    def test_matrix_digests_match_row_digests(self, rng):
        X = rng.normal(size=(9, 4))
        assert matrix_digests(X) == [row_digest(row) for row in X]

    def test_matrix_digests_rejects_1d(self, rng):
        with pytest.raises(ValidationError, match="2-D"):
            matrix_digests(rng.normal(size=5))


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(max_size=4)
        assert cache.get(b"a") is None
        cache.put(b"a", 1)
        assert cache.get(b"a") == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LRUCache(max_size=2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        cache.get(b"a")          # refresh a -> b is now oldest
        cache.put(b"c", 3)
        assert b"a" in cache
        assert b"b" not in cache
        assert b"c" in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(max_size=0)
        cache.put(b"a", 1)
        assert cache.get(b"a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError, match="max_size"):
            LRUCache(max_size=-1)

    def test_get_many_put_many(self):
        cache = LRUCache(max_size=10)
        cache.put_many([(b"a", 1), (b"b", 2)])
        assert cache.get_many([b"a", b"x", b"b"]) == [1, None, 2]
        assert cache.hits == 2
        assert cache.misses == 1

    def test_put_many_evicts_beyond_capacity(self):
        cache = LRUCache(max_size=3)
        cache.put_many([(bytes([i]), i) for i in range(6)])
        assert len(cache) == 3
        assert cache.get(bytes([5])) == 5
        assert cache.get(bytes([0])) is None

    def test_clear_resets_everything(self):
        cache = LRUCache(max_size=4)
        cache.put(b"a", 1)
        cache.get(b"a")
        cache.get(b"zz")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.info()["hit_rate"] == 0.0

    def test_info_snapshot(self):
        cache = LRUCache(max_size=8)
        cache.put(b"k", 42)
        cache.get(b"k")
        info = cache.info()
        assert info == {
            "size": 1, "max_size": 8, "hits": 1, "misses": 0, "hit_rate": 1.0,
        }

    def test_thread_safety_smoke(self):
        cache = LRUCache(max_size=64)
        errors = []

        def hammer(worker):
            try:
                for i in range(500):
                    key = bytes([worker, i % 32])
                    cache.put(key, i)
                    cache.get(key)
                    cache.get_many([key, bytes([255, worker])])
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
