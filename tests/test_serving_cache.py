"""Tests for repro.serving.cache — digests and the LRU result cache."""

import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serving import LRUCache, matrix_digests, row_digest


class TestRowDigest:
    def test_deterministic(self, rng):
        row = rng.normal(size=7)
        assert row_digest(row) == row_digest(row.copy())

    def test_dtype_and_layout_canonicalized(self, rng):
        row = rng.normal(size=6)
        assert row_digest(row) == row_digest(list(row))
        assert row_digest(row) == row_digest(row.astype(np.float64))
        strided = np.vstack([row, row])[::2][0]
        assert row_digest(row) == row_digest(strided)

    def test_different_rows_differ(self, rng):
        a = rng.normal(size=5)
        b = a.copy()
        b[2] += 1e-9
        assert row_digest(a) != row_digest(b)

    def test_matrix_digests_match_row_digests(self, rng):
        X = rng.normal(size=(9, 4))
        assert matrix_digests(X) == [row_digest(row) for row in X]

    def test_matrix_digests_rejects_1d(self, rng):
        with pytest.raises(ValidationError, match="2-D"):
            matrix_digests(rng.normal(size=5))


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(max_size=4)
        assert cache.get(b"a") is None
        cache.put(b"a", 1)
        assert cache.get(b"a") == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LRUCache(max_size=2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        cache.get(b"a")          # refresh a -> b is now oldest
        cache.put(b"c", 3)
        assert b"a" in cache
        assert b"b" not in cache
        assert b"c" in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(max_size=0)
        cache.put(b"a", 1)
        assert cache.get(b"a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError, match="max_size"):
            LRUCache(max_size=-1)

    def test_get_many_put_many(self):
        cache = LRUCache(max_size=10)
        cache.put_many([(b"a", 1), (b"b", 2)])
        assert cache.get_many([b"a", b"x", b"b"]) == [1, None, 2]
        assert cache.hits == 2
        assert cache.misses == 1

    def test_put_many_evicts_beyond_capacity(self):
        cache = LRUCache(max_size=3)
        cache.put_many([(bytes([i]), i) for i in range(6)])
        assert len(cache) == 3
        assert cache.get(bytes([5])) == 5
        assert cache.get(bytes([0])) is None

    def test_clear_resets_everything(self):
        cache = LRUCache(max_size=4)
        cache.put(b"a", 1)
        cache.get(b"a")
        cache.get(b"zz")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0
        assert cache.info()["hit_rate"] == 0.0

    def test_info_snapshot(self):
        cache = LRUCache(max_size=8)
        cache.put(b"k", 42)
        cache.get(b"k")
        info = cache.info()
        assert info == {
            "size": 1, "max_size": 8, "hits": 1, "misses": 0, "hit_rate": 1.0,
        }

    def test_non_array_values_pass_through(self):
        cache = LRUCache(max_size=4)
        payload = {"tag": "anything"}
        cache.put(b"k", payload)
        assert cache.get(b"k") is payload

    def test_thread_safety_smoke(self):
        cache = LRUCache(max_size=64)
        errors = []

        def hammer(worker):
            try:
                for i in range(500):
                    key = bytes([worker, i % 32])
                    cache.put(key, i)
                    cache.get(key)
                    cache.get_many([key, bytes([255, worker])])
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


class TestAliasingRegression:
    """``put``/``get`` must never alias caller memory.

    Regression suite for the cache-corruption bug where ``put`` stored the
    caller's array itself and ``get`` returned it: any caller that mutated
    a returned row silently corrupted the entry for every later request
    (``c.put(k, a); c.get(k)[0] = 99; c.get(k)[0] == 99``).
    """

    def test_mutating_returned_row_raises_and_cache_stays_clean(self):
        cache = LRUCache(max_size=4)
        cache.put(b"k", np.arange(4.0))
        row = cache.get(b"k")
        with pytest.raises(ValueError):
            row[0] = 99.0
        assert cache.get(b"k")[0] == 0.0

    def test_returned_view_cannot_be_made_writeable(self):
        cache = LRUCache(max_size=4)
        cache.put(b"k", np.arange(3.0))
        row = cache.get(b"k")
        # The stored base is read-only, so numpy refuses to re-enable
        # writes on the returned view — the contract is tamper-proof, not
        # just accidental-mutation-proof.
        with pytest.raises(ValueError):
            row.setflags(write=True)

    def test_put_stores_defensive_copy(self):
        cache = LRUCache(max_size=4)
        source = np.arange(4.0)
        cache.put(b"k", source)
        source[0] = 77.0  # caller keeps mutating its own array
        assert cache.get(b"k")[0] == 0.0

    def test_put_many_stores_defensive_copies(self):
        cache = LRUCache(max_size=8)
        rows = [np.full(3, float(i)) for i in range(3)]
        cache.put_many((bytes([i]), row) for i, row in enumerate(rows))
        for row in rows:
            row[:] = -1.0
        for i in range(3):
            assert cache.get(bytes([i]))[0] == float(i)

    def test_get_many_rows_are_readonly(self):
        cache = LRUCache(max_size=8)
        cache.put_many([(b"a", np.zeros(2)), (b"b", np.ones(2))])
        hit_a, miss, hit_b = cache.get_many([b"a", b"x", b"b"])
        assert miss is None
        for hit in (hit_a, hit_b):
            with pytest.raises(ValueError):
                hit[0] = 5.0
        assert cache.get(b"a")[0] == 0.0
        assert cache.get(b"b")[0] == 1.0
