"""Tests for repro.serving.http — the ServingServer HTTP front end.

Everything talks to a real socket on 127.0.0.1 (ephemeral ports), through
``http.client`` for well-formed requests and a raw socket where the test
needs to send protocol garbage.
"""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro import PFR
from repro.graphs import pairwise_judgment_graph
from repro.serving import ModelRegistry, ServingServer, TransformService


@pytest.fixture(scope="module")
def fitted():
    """Two fitted PFR versions (different n_components so outputs differ)."""
    rng = np.random.default_rng(12345)
    X = rng.normal(size=(60, 5))
    WF1 = pairwise_judgment_graph([(0, 1), (4, 9)], n=60)
    model_v1 = PFR(n_components=2, gamma=0.5, n_neighbors=4).fit(X, WF1)
    WF2 = pairwise_judgment_graph([(2, 3)], n=60)
    model_v2 = PFR(n_components=3, gamma=0.2, n_neighbors=4).fit(X, WF2)
    return X, model_v1, model_v2


@pytest.fixture
def registry(fitted, tmp_path):
    _, model_v1, _ = fitted
    registry = ModelRegistry(tmp_path / "registry")
    registry.register("pfr", model_v1)
    return registry


@pytest.fixture
def server(registry):
    with ServingServer(TransformService(registry), n_workers=4) as srv:
        yield srv


def _call(server, method, path, payload=None, body=None, headers=None):
    """One request over a fresh connection; returns (status, parsed, resp)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        if payload is not None:
            body = json.dumps(payload)
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        parsed = (
            json.loads(raw) if content_type.startswith("application/json")
            else raw.decode("utf-8")
        )
        return response.status, parsed, response
    finally:
        conn.close()


class TestLifecycle:
    def test_ephemeral_port_and_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_close_is_idempotent(self, registry):
        srv = ServingServer(TransformService(registry)).start()
        srv.close()
        srv.close()

    def test_double_start_rejected(self, server):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="already running"):
            server.start()

    def test_bind_failure_raised_in_start(self, registry, server):
        clash = ServingServer(TransformService(registry), port=server.port)
        with pytest.raises(OSError):
            clash.start()

    def test_bad_parameters(self, registry):
        from repro.exceptions import ValidationError

        service = TransformService(registry)
        for kwargs in (
            {"n_workers": 0},
            {"max_queue": 0},
            {"max_body_bytes": 0},
            {"request_timeout": 0.0},
        ):
            with pytest.raises(ValidationError):
                ServingServer(service, **kwargs)


class TestHealthAndMetrics:
    def test_healthz(self, server):
        status, body, _ = _call(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 4

    def test_metrics_prometheus_format(self, fitted, server):
        X, model_v1, _ = fitted
        _call(server, "POST", "/transform",
              payload={"model": "pfr", "rows": X[:3].tolist()})
        status, text, response = _call(server, "GET", "/metrics")
        assert status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'route="/transform"' in text
        assert 'status="200"' in text
        assert "repro_http_inflight" in text
        assert "repro_serving_rows_total" in text


class TestTransform:
    def test_single_row(self, fitted, server):
        X, model_v1, _ = fitted
        status, body, _ = _call(
            server, "POST", "/transform",
            payload={"model": "pfr", "row": X[0].tolist()},
        )
        assert status == 200
        assert body["model"] == "pfr@1"
        np.testing.assert_allclose(
            body["row"], model_v1.transform(X[:1])[0], atol=1e-10
        )

    def test_batch_rows(self, fitted, server):
        X, model_v1, _ = fitted
        status, body, _ = _call(
            server, "POST", "/transform",
            payload={"model": "pfr@latest", "rows": X[:5].tolist()},
        )
        assert status == 200
        assert body["model"] == "pfr@1"
        np.testing.assert_allclose(
            body["rows"], model_v1.transform(X[:5]), atol=1e-10
        )

    def test_spec_forms_agree(self, fitted, server):
        X, *_ = fitted
        results = []
        for spec in ("pfr", "pfr@latest", "pfr@1"):
            status, body, _ = _call(
                server, "POST", "/transform",
                payload={"model": spec, "row": X[0].tolist()},
            )
            assert status == 200
            results.append(body["row"])
        np.testing.assert_allclose(results[0], results[1])
        np.testing.assert_allclose(results[0], results[2])

    def test_keep_alive_reuses_connection(self, fitted, server):
        X, *_ = fitted
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            for _ in range(3):
                conn.request(
                    "POST", "/transform",
                    body=json.dumps({"model": "pfr", "row": X[0].tolist()}),
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestTransformValidation:
    @pytest.mark.parametrize("payload,fragment", [
        ({"row": [1, 2, 3, 4, 5]}, "model"),
        ({"model": 7, "row": [1, 2, 3, 4, 5]}, "model"),
        ({"model": "pfr"}, "exactly one"),
        ({"model": "pfr", "row": [1.0] * 5, "rows": [[1.0] * 5]},
         "exactly one"),
        ({"model": "pfr", "row": ["a", "b"]}, "numeric"),
        ({"model": "pfr", "row": [[1.0] * 5]}, "flat array"),
        ({"model": "pfr", "rows": [1.0] * 5}, "equal-length"),
        ({"model": "pfr", "rows": [[1.0, 2.0], [3.0]]}, "numeric"),
        ({"model": "pfr", "row": [1.0, 2.0]}, "schema mismatch"),
    ])
    def test_400s(self, server, payload, fragment):
        status, body, _ = _call(server, "POST", "/transform", payload=payload)
        assert status == 400
        assert fragment in body["error"]

    def test_malformed_json_body(self, server):
        status, body, _ = _call(server, "POST", "/transform", body="{nope")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_non_object_json_body(self, server):
        status, body, _ = _call(server, "POST", "/transform", body="[1,2]")
        assert status == 400
        assert "JSON object" in body["error"]

    def test_unknown_model_404(self, server):
        status, body, _ = _call(
            server, "POST", "/transform",
            payload={"model": "ghost", "row": [1.0] * 5},
        )
        assert status == 404
        assert "unknown model" in body["error"]

    def test_unknown_version_404(self, server):
        status, body, _ = _call(
            server, "POST", "/transform",
            payload={"model": "pfr@99", "row": [1.0] * 5},
        )
        assert status == 404


class TestRouting:
    def test_unknown_route_404(self, server):
        status, body, _ = _call(server, "GET", "/nope")
        assert status == 404

    def test_method_not_allowed(self, server):
        for method, path in (
            ("GET", "/transform"),
            ("POST", "/healthz"),
            ("POST", "/metrics"),
            ("POST", "/models"),
            ("GET", "/models/pfr/promote"),
        ):
            status, body, _ = _call(server, method, path)
            assert status == 405, (method, path)

    def test_query_string_ignored(self, server):
        status, body, _ = _call(server, "GET", "/healthz?verbose=1")
        assert status == 200


class TestModelsEndpoints:
    def test_models_list(self, server):
        status, body, _ = _call(server, "GET", "/models")
        assert status == 200
        (record,) = body["models"]
        assert record["name"] == "pfr"
        assert record["version"] == 1
        assert record["model_type"] == "PFR"
        assert record["n_features_in"] == 5

    def test_model_show(self, fitted, registry, server):
        _, _, model_v2 = fitted
        registry.register("pfr", model_v2)
        status, body, _ = _call(server, "GET", "/models/pfr@1")
        assert status == 200
        assert body["spec"] == "pfr@1"
        assert body["all_versions"] == [1, 2]
        assert body["is_latest"] is False

    def test_model_show_unknown_404(self, server):
        status, body, _ = _call(server, "GET", "/models/ghost")
        assert status == 404

    def test_promote_flips_latest(self, fitted, registry, server):
        X, model_v1, model_v2 = fitted
        registry.register("pfr", model_v2)  # pfr@2 becomes latest

        def latest_width():
            _, body, _ = _call(
                server, "POST", "/transform",
                payload={"model": "pfr@latest", "row": X[0].tolist()},
            )
            return body["model"], len(body["row"])

        assert latest_width() == ("pfr@2", 3)
        status, body, _ = _call(
            server, "POST", "/models/pfr/promote", payload={"version": 1},
        )
        assert status == 200
        assert body["spec"] == "pfr@1"
        assert body["is_latest"] is True
        assert latest_width() == ("pfr@1", 2)

    @pytest.mark.parametrize("version", ["1", 1.5, True, None])
    def test_promote_requires_integer_version(self, server, version):
        status, body, _ = _call(
            server, "POST", "/models/pfr/promote",
            payload={"version": version},
        )
        assert status == 400
        assert "integer" in body["error"]

    def test_promote_unknown_version_404(self, server):
        status, body, _ = _call(
            server, "POST", "/models/pfr/promote", payload={"version": 42},
        )
        assert status == 404


class TestProtocolEdges:
    def _raw(self, server, data: bytes) -> bytes:
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(data)
            sock.settimeout(10)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_malformed_request_line(self, server):
        response = self._raw(server, b"GARBAGE\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"malformed HTTP request line" in response

    def test_malformed_header(self, server):
        response = self._raw(
            server, b"GET /healthz HTTP/1.1\r\nnot a header\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_chunked_body_not_implemented(self, server):
        response = self._raw(
            server,
            b"POST /transform HTTP/1.1\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 501 ")

    def test_bad_content_length(self, server):
        response = self._raw(
            server,
            b"POST /transform HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_oversized_body_413(self, registry):
        with ServingServer(
            TransformService(registry), max_body_bytes=64
        ) as small:
            payload = {"model": "pfr", "rows": [[1.0] * 5] * 100}
            status, body, _ = _call(
                small, "POST", "/transform", payload=payload
            )
            assert status == 413
            assert "exceeds" in body["error"]

    def test_connection_close_honored(self, fitted, server):
        X, *_ = fitted
        status, body, response = _call(
            server, "POST", "/transform",
            payload={"model": "pfr", "row": X[0].tolist()},
            headers={"Connection": "close"},
        )
        assert status == 200
        assert response.headers["Connection"] == "close"


class _GatedService(TransformService):
    """TransformService whose single-row path blocks until released."""

    def __init__(self, registry, **kwargs):
        super().__init__(registry, **kwargs)
        self.started = threading.Event()
        self.release = threading.Event()

    def transform_one_versioned(self, spec, row):
        self.started.set()
        self.release.wait(30.0)
        return super().transform_one_versioned(spec, row)


class TestOverload:
    def test_queue_full_answers_429(self, registry, fitted):
        X, *_ = fitted
        service = _GatedService(registry)
        with ServingServer(service, n_workers=1, max_queue=1) as srv:
            try:
                payload = {"model": "pfr", "row": X[0].tolist()}
                slow = {}

                def blocked_client():
                    slow["response"] = _call(
                        srv, "POST", "/transform", payload=payload
                    )

                thread = threading.Thread(target=blocked_client)
                thread.start()
                assert service.started.wait(10.0)
                # One admitted request saturates max_queue=1: the next is
                # refused immediately instead of queueing behind it.
                status, body, _ = _call(
                    srv, "POST", "/transform", payload=payload
                )
                assert status == 429
                assert "overloaded" in body["error"]
                # Health stays answerable while the worker is saturated.
                assert _call(srv, "GET", "/healthz")[0] == 200
            finally:
                service.release.set()
            thread.join(10.0)
            assert not thread.is_alive()
            assert slow["response"][0] == 200

    def test_slow_request_answers_503(self, registry, fitted):
        X, *_ = fitted
        service = _GatedService(registry)
        with ServingServer(service, request_timeout=0.2) as srv:
            try:
                status, body, _ = _call(
                    srv, "POST", "/transform",
                    payload={"model": "pfr", "row": X[0].tolist()},
                )
                assert status == 503
                assert "timed out" in body["error"]
            finally:
                service.release.set()


class TestPromoteUnderLoad:
    def test_latest_is_never_torn_over_http(self, fitted, registry):
        # Clients hammer @latest over keep-alive connections while another
        # thread promotes back and forth over HTTP. Every response's
        # "model" label must match that version's expected output exactly —
        # a 2-wide row labeled pfr@2 (or vice versa) is a torn read.
        X, model_v1, model_v2 = fitted
        registry.register("pfr", model_v2)
        row = X[0]
        expected = {
            "pfr@1": model_v1.transform(row[None])[0],
            "pfr@2": model_v2.transform(row[None])[0],
        }
        errors = []
        stop = threading.Event()

        with ServingServer(TransformService(registry), n_workers=8) as srv:
            def flipper():
                conn = http.client.HTTPConnection(
                    srv.host, srv.port, timeout=10
                )
                version = 1
                try:
                    while not stop.is_set():
                        conn.request(
                            "POST", "/models/pfr/promote",
                            body=json.dumps({"version": version}),
                        )
                        response = conn.getresponse()
                        assert response.status == 200
                        response.read()
                        version = 3 - version
                        time.sleep(0.001)
                finally:
                    conn.close()

            def client():
                conn = http.client.HTTPConnection(
                    srv.host, srv.port, timeout=10
                )
                try:
                    for _ in range(60):
                        if errors:
                            return
                        conn.request(
                            "POST", "/transform",
                            body=json.dumps(
                                {"model": "pfr@latest", "row": row.tolist()}
                            ),
                        )
                        response = conn.getresponse()
                        body = json.loads(response.read())
                        if response.status != 200:
                            raise AssertionError(f"status {response.status}: {body}")
                        np.testing.assert_allclose(
                            body["row"], expected[body["model"]], atol=1e-10
                        )
                except Exception as exc:  # pragma: no cover - only on failure
                    errors.append(exc)
                finally:
                    conn.close()

            flip = threading.Thread(target=flipper)
            clients = [threading.Thread(target=client) for _ in range(4)]
            flip.start()
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            stop.set()
            flip.join()
        assert not errors


class TestDriftEndpoint:
    def test_drift_route(self, fitted, registry):
        X, *_ = fitted
        service = TransformService(registry, drift=True)
        with ServingServer(service, n_workers=2) as server:
            status, body, _ = _call(server, "GET", "/drift")
            assert status == 200
            assert body == {"enabled": True, "models": {}}
            _call(
                server,
                "POST",
                "/transform",
                payload={"model": "pfr@latest", "rows": X[:4].tolist()},
            )
            status, body, _ = _call(server, "GET", "/drift")
            assert status == 200
            # Exact fit: loaded, drift accounting unavailable -> None.
            assert body["models"] == {"pfr@1": None}

    def test_drift_rejects_post(self, fitted, registry):
        service = TransformService(registry, drift=True)
        with ServingServer(service, n_workers=2) as server:
            status, body, _ = _call(server, "POST", "/drift", payload={})
            assert status == 405

    def test_landmark_model_reports_snapshot(self, tmp_path):
        from repro.graphs import knn_graph

        rng = np.random.default_rng(8)
        X = rng.normal(size=(150, 4))
        model = PFR(
            n_components=2, gamma=0.5, extension="nystrom", landmarks=50
        ).fit(X, knn_graph(X, n_neighbors=6))
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("pfr", model)
        service = TransformService(registry, drift=True, drift_floor=0.3)
        with ServingServer(service, n_workers=2) as server:
            _call(
                server,
                "POST",
                "/transform",
                payload={"model": "pfr@latest", "rows": X[:16].tolist()},
            )
            status, body, _ = _call(server, "GET", "/drift")
            assert status == 200
            snap = body["models"]["pfr@1"]
            assert snap["count"] > 0
            assert snap["floor"] == pytest.approx(0.3)


class TestRefreshHook:
    def test_hook_fires_periodically_and_stops_with_server(self, registry):
        fired = threading.Event()
        calls = []

        def hook():
            calls.append(time.monotonic())
            if len(calls) >= 2:
                fired.set()

        service = TransformService(registry)
        server = ServingServer(
            service, n_workers=2, refresh_hook=hook, refresh_interval=0.05
        ).start()
        try:
            assert fired.wait(timeout=5.0), "refresh hook never fired twice"
        finally:
            server.close()
        settled = len(calls)
        time.sleep(0.2)
        assert len(calls) == settled  # thread joined on close

    def test_hook_errors_are_counted_not_fatal(self, fitted, registry):
        X, *_ = fitted

        def hook():
            raise RuntimeError("refresh exploded")

        service = TransformService(registry)
        with ServingServer(
            service, n_workers=2, refresh_hook=hook, refresh_interval=0.05
        ) as server:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if service.metrics.counter_value("http.refresh_hook_errors"):
                    break
                time.sleep(0.05)
            assert service.metrics.counter_value("http.refresh_hook_errors") >= 1
            # The server still serves.
            status, _, _ = _call(
                server,
                "POST",
                "/transform",
                payload={"model": "pfr@latest", "rows": X[:2].tolist()},
            )
            assert status == 200

    def test_invalid_hook_parameters(self, registry):
        service = TransformService(registry)
        with pytest.raises(Exception, match="refresh_hook"):
            ServingServer(service, refresh_hook="not-callable")
        with pytest.raises(Exception, match="refresh_interval"):
            ServingServer(
                service, refresh_hook=lambda: None, refresh_interval=0.0
            )
