"""Tests for repro.serving.registry — the versioned on-disk model registry."""

import json

import numpy as np
import pytest

from repro import PFR, __version__
from repro.exceptions import ValidationError
from repro.graphs import pairwise_judgment_graph
from repro.ml import StandardScaler
from repro.serving import ModelRegistry


@pytest.fixture
def fitted_pfr(rng):
    X = rng.normal(size=(40, 5))
    WF = pairwise_judgment_graph([(0, 1), (4, 9)], n=40)
    return PFR(n_components=2, gamma=0.6, n_neighbors=4).fit(X, WF), X


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestRegister:
    def test_versions_increment(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        assert registry.register("pfr", model).version == 1
        assert registry.register("pfr", model).version == 2
        assert [r.version for r in registry.versions("pfr")] == [1, 2]

    def test_record_fields(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        record = registry.register("pfr", model)
        assert record.name == "pfr"
        assert record.model_type == "PFR"
        assert record.library_version == __version__
        assert record.n_features_in == 5
        assert record.params["gamma"] == 0.6
        assert record.spec == "pfr@1"
        assert record.is_latest

    def test_stage_digests_recorded(self, registry, fitted_pfr):
        model, X = fitted_pfr
        record = registry.register("pfr", model)
        assert set(record.stage_digests) == {
            "graph", "laplacian", "projection", "solve"
        }
        assert record.stage_digests == model.plan_digests_
        # The digests survive the manifest round trip and pin provenance:
        # the same training inputs + structure reproduce them exactly.
        reread = registry.record("pfr", record.version)
        assert reread.stage_digests == record.stage_digests
        refit = PFR(n_components=2, gamma=0.6, n_neighbors=4).fit(
            X, pairwise_judgment_graph([(0, 1), (4, 9)], n=40)
        )
        assert refit.plan_digests_ == record.stage_digests

    def test_stage_digests_empty_for_non_plan_models(self, registry, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        record = registry.register("scaler", scaler)
        assert record.stage_digests == {}

    def test_register_promotes_by_default(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        registry.register("pfr", model)
        assert registry.resolve("pfr") == ("pfr", 2)

    def test_no_promote_keeps_latest(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        record = registry.register("pfr", model, promote=False)
        assert not record.is_latest
        assert registry.resolve("pfr@latest") == ("pfr", 1)

    def test_first_register_no_promote_stays_unpromoted(self, registry, fitted_pfr):
        # The canary workflow: --no-promote on a fresh name must not make
        # the unvalidated version servable via @latest.
        model, _ = fitted_pfr
        record = registry.register("pfr", model, promote=False)
        assert not record.is_latest
        with pytest.raises(ValidationError, match="no promoted version"):
            registry.resolve("pfr")
        # ...but the pinned spec and the listing still see it.
        assert registry.resolve("pfr@1") == ("pfr", 1)
        listed = registry.list_models()
        assert [(r.name, r.version, r.is_latest) for r in listed] == [
            ("pfr", 1, False)
        ]
        # Promotion makes it live.
        registry.promote("pfr", 1)
        assert registry.resolve("pfr") == ("pfr", 1)

    def test_bad_names_rejected(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        for bad in ("", "a@b", "with space", "-leading", ".hidden"):
            with pytest.raises(ValidationError, match="bad model name"):
                registry.register(bad, model)

    def test_unfitted_model_rejected(self, registry):
        with pytest.raises(Exception):
            registry.register("pfr", PFR())

    def test_excluded_columns_recorded(self, registry, rng):
        X = rng.normal(size=(30, 4))
        WF = pairwise_judgment_graph([(0, 1)], n=30)
        model = PFR(n_components=2, n_neighbors=3, exclude_columns=[3]).fit(X, WF)
        record = registry.register("pfr-excl", model)
        assert record.excluded_columns == [3]


class TestResolveAndLoad:
    def test_resolve_forms(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        registry.register("pfr", model)
        assert registry.resolve("pfr") == ("pfr", 2)
        assert registry.resolve("pfr@latest") == ("pfr", 2)
        assert registry.resolve("pfr@1") == ("pfr", 1)

    def test_unknown_name(self, registry):
        with pytest.raises(ValidationError, match="unknown model"):
            registry.resolve("ghost")

    def test_unknown_version(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        with pytest.raises(ValidationError, match="no version 9"):
            registry.resolve("pfr@9")

    def test_bad_selector(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        with pytest.raises(ValidationError, match="bad version selector"):
            registry.resolve("pfr@newest")

    def test_load_round_trips(self, registry, fitted_pfr):
        model, X = fitted_pfr
        registry.register("pfr", model)
        restored = registry.load("pfr@1")
        np.testing.assert_allclose(restored.transform(X), model.transform(X))


class TestPromoteAndList:
    def test_promote_rolls_back(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        registry.register("pfr", model)
        record = registry.promote("pfr", 1)
        assert record.is_latest
        assert registry.resolve("pfr") == ("pfr", 1)

    def test_promote_unknown_version(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        with pytest.raises(ValidationError, match="no version 7"):
            registry.promote("pfr", 7)

    def test_latest_cache_tracks_manifest_rewrites(self, registry, fitted_pfr):
        # resolve("name") stats the manifest and only re-parses on change;
        # a promotion (manifest rewrite) must invalidate the cached value.
        model, _ = fitted_pfr
        registry.register("pfr", model)
        registry.register("pfr", model)
        assert registry.resolve("pfr") == ("pfr", 2)
        assert registry.resolve("pfr") == ("pfr", 2)  # served from cache
        registry.promote("pfr", 1)
        assert registry.resolve("pfr") == ("pfr", 1)

    def test_external_manifest_rewrite_visible(self, registry, fitted_pfr):
        # Another process promoting through its own ModelRegistry instance
        # must be picked up by this instance's stat-based cache.
        model, _ = fitted_pfr
        registry.register("pfr", model)
        registry.register("pfr", model)
        assert registry.resolve("pfr") == ("pfr", 2)
        other = ModelRegistry(registry.root)
        other.promote("pfr", 1)
        assert registry.resolve("pfr") == ("pfr", 1)

    def test_list_models(self, registry, fitted_pfr, rng):
        model, _ = fitted_pfr
        registry.register("pfr-b", model)
        registry.register("pfr-a", model)
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        registry.register("scaler", scaler)
        names = [record.name for record in registry.list_models()]
        assert names == ["pfr-a", "pfr-b", "scaler"]
        types = {r.name: r.model_type for r in registry.list_models()}
        assert types["scaler"] == "StandardScaler"

    def test_list_empty_registry(self, tmp_path):
        assert ModelRegistry(tmp_path / "nothing").list_models() == []


class TestManifest:
    def test_manifest_is_valid_json_with_schema(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        record = registry.register("pfr", model)
        manifest_path = registry.root / "pfr" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["latest"] == 1
        entry = manifest["versions"]["1"]
        assert entry["model_type"] == "PFR"
        assert entry["library_version"] == __version__
        assert entry["n_features_in"] == 5
        assert entry["file"] == "v0001.npz"
        assert (registry.root / "pfr" / entry["file"]).exists()
        assert record.path.endswith("v0001.npz")

    def test_large_array_params_summarized_not_inlined(self, registry, rng):
        from repro import SideInformationAugmenter

        X = rng.normal(size=(200, 3))
        model = SideInformationAugmenter(
            side_information=rng.random(200)
        ).fit(X)
        record = registry.register("augmenter", model)
        assert record.params["side_information"] == "<array shape=(200,)>"
        restored = registry.load("augmenter")
        np.testing.assert_allclose(restored.transform(X), model.transform(X))

    def test_corrupt_manifest_raises(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        (registry.root / "pfr" / "manifest.json").write_text("{not json")
        with pytest.raises(ValidationError, match="corrupt registry manifest"):
            registry.resolve("pfr")


class TestPromoteRollbackUnderReaders:
    """Lifecycle rollback = re-promoting the previous version while
    concurrent readers follow @latest (ISSUE 9 satellite: the registry
    must never expose a torn manifest mid-promote)."""

    def test_latest_is_always_a_complete_version(self, registry, fitted_pfr):
        import threading

        model, X = fitted_pfr
        registry.register("pfr", model)  # v1
        registry.register("pfr", model)  # v2, latest
        stop = threading.Event()
        errors = []
        seen = set()

        def reader():
            try:
                while not stop.is_set():
                    name, version = registry.resolve("pfr@latest")
                    assert name == "pfr"
                    seen.add(version)
                    # The resolved version must be fully materialized:
                    # its record loads and its artifact transforms.
                    record = registry.record("pfr", version)
                    assert record.version == version
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            # Promote/rollback churn: v2 -> v1 (rollback) -> v2 -> ...
            for flip in range(30):
                registry.promote("pfr", 1 + flip % 2)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert not errors
        assert seen <= {1, 2} and len(seen) == 2

    def test_promote_returns_latest_record(self, registry, fitted_pfr):
        model, _ = fitted_pfr
        registry.register("pfr", model)
        registry.register("pfr", model)
        rollback = registry.promote("pfr", 1)
        assert rollback.version == 1 and rollback.is_latest
        assert registry.resolve("pfr@latest") == ("pfr", 1)
        # The regressed version stays on disk for audit.
        assert [r.version for r in registry.versions("pfr")] == [1, 2]
