"""Tests for repro.serving.service — the TransformService façade."""

import threading

import numpy as np
import pytest

from repro import PFR
from repro.exceptions import ValidationError
from repro.graphs import pairwise_judgment_graph
from repro.serving import ModelRegistry, TransformService


@pytest.fixture
def setup(rng, tmp_path):
    X = rng.normal(size=(60, 5))
    WF = pairwise_judgment_graph([(0, 1), (4, 9)], n=60)
    model = PFR(n_components=2, gamma=0.5, n_neighbors=4).fit(X, WF)
    registry = ModelRegistry(tmp_path / "registry")
    registry.register("pfr", model)
    return registry, model, X


class TestTransform:
    def test_matches_direct_transform(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        Xq = rng.normal(size=(12, 5))
        np.testing.assert_allclose(
            service.transform("pfr", Xq), model.transform(Xq)
        )

    def test_spec_forms(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        Xq = rng.normal(size=(3, 5))
        expected = model.transform(Xq)
        for spec in ("pfr", "pfr@latest", "pfr@1"):
            np.testing.assert_allclose(service.transform(spec, Xq), expected)

    def test_transform_one(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        row = rng.normal(size=5)
        np.testing.assert_allclose(
            service.transform_one("pfr", row), model.transform(row[None])[0]
        )
        with pytest.raises(ValidationError, match="1-D"):
            service.transform_one("pfr", rng.normal(size=(2, 5)))

    def test_unknown_model(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        with pytest.raises(ValidationError, match="unknown model"):
            service.transform("ghost", rng.normal(size=(2, 5)))

    def test_schema_mismatch(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        with pytest.raises(ValidationError, match="schema mismatch"):
            service.transform("pfr", rng.normal(size=(4, 3)))

    def test_rejects_1d_matrix(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        with pytest.raises(ValidationError, match="2-D"):
            service.transform("pfr", rng.normal(size=5))

    def test_chunked_bulk_matches(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry, chunk_size=7, cache_size=0)
        Xq = rng.normal(size=(40, 5))
        np.testing.assert_allclose(
            service.transform("pfr", Xq), model.transform(Xq)
        )


class TestCaching:
    def test_transform_one_counts_one_miss_one_hit(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        row = rng.normal(size=5)
        service.transform_one("pfr", row)
        service.transform_one("pfr", row)
        cache = service.stats()["models"]["pfr@1"]["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1
        assert cache["hit_rate"] == 0.5

    def test_repeat_hits_cache(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        Xq = rng.normal(size=(10, 5))
        Z1 = service.transform("pfr", Xq)
        Z2 = service.transform("pfr", Xq)
        np.testing.assert_allclose(Z1, Z2)
        totals = service.stats()["totals"]
        assert totals["cache_hits"] == 10
        assert totals["cache_misses"] == 10

    def test_duplicates_within_request_computed_once(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        row = rng.normal(size=5)
        Xq = np.tile(row, (6, 1))
        Z = service.transform("pfr", Xq)
        np.testing.assert_allclose(Z, model.transform(Xq))
        cache_info = service.stats()["models"]["pfr@1"]["cache"]
        assert cache_info["size"] == 1

    def test_partial_hits_assembled_correctly(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        Xa = rng.normal(size=(5, 5))
        Xb = rng.normal(size=(5, 5))
        service.transform("pfr", Xa)
        mixed = np.vstack([Xb[:2], Xa[1:3], Xb[2:]])
        np.testing.assert_allclose(
            service.transform("pfr", mixed), model.transform(mixed)
        )

    def test_caller_mutation_cannot_corrupt_cache(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        Xq = rng.normal(size=(5, 5))
        expected = model.transform(Xq)
        Z = service.transform("pfr", Xq)
        Z[:] = -999.0  # hostile caller scribbles over its result
        np.testing.assert_allclose(service.transform("pfr", Xq), expected)

    def test_transform_one_rows_are_readonly_hit_or_miss(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        row = rng.normal(size=5)
        expected = model.transform(row[None])[0]
        miss = service.transform_one("pfr", row)  # miss populates the cache
        hit = service.transform_one("pfr", row)
        # Mutability must not depend on cache state: both paths raise
        # instead of corrupting (or appearing to tolerate) mutation.
        for result in (miss, hit):
            with pytest.raises(ValueError):
                result[0] = -999.0
        np.testing.assert_allclose(service.transform_one("pfr", row), expected)

    def test_cache_disabled(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry, cache_size=0)
        Xq = rng.normal(size=(4, 5))
        service.transform("pfr", Xq)
        service.transform("pfr", Xq)
        totals = service.stats()["totals"]
        assert totals["cache_hits"] == 0

    def test_transform_one_readonly_with_cache_disabled(self, setup, rng):
        # Regression: with cache_size=0 transform_one used to return a
        # *writable* row, so mutability depended on cache state — the exact
        # thing the documented contract forbids.
        registry, model, _ = setup
        service = TransformService(registry, cache_size=0)
        row = rng.normal(size=5)
        result = service.transform_one("pfr", row)
        with pytest.raises(ValueError):
            result[0] = -999.0
        np.testing.assert_allclose(result, model.transform(row[None])[0])


class TestLifecycle:
    def test_loaded_models_and_evict(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        assert service.loaded_models() == []
        service.transform("pfr", rng.normal(size=(2, 5)))
        assert service.loaded_models() == ["pfr@1"]
        service.evict("pfr@1")
        assert service.loaded_models() == []
        service.transform("pfr", rng.normal(size=(2, 5)))
        service.evict()
        assert service.loaded_models() == []

    def test_latest_follows_promotion(self, setup, rng):
        registry, model, X = setup
        WF = pairwise_judgment_graph([(2, 3)], n=60)
        other = PFR(n_components=3, gamma=0.2, n_neighbors=4).fit(X, WF)
        registry.register("pfr", other)
        service = TransformService(registry)
        Xq = rng.normal(size=(4, 5))
        assert service.transform("pfr", Xq).shape == (4, 3)
        registry.promote("pfr", 1)
        assert service.transform("pfr", Xq).shape == (4, 2)

    def test_stats_shape(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        service.transform("pfr", rng.normal(size=(8, 5)))
        stats = service.stats()
        entry = stats["models"]["pfr@1"]
        assert entry["requests"] == 1
        assert entry["rows"] == 8
        assert entry["model_type"] == "PFR"
        assert entry["seconds"] > 0
        assert entry["rows_per_second"] > 0
        assert stats["totals"]["rows"] == 8

    def test_concurrent_transforms(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        Xq = rng.normal(size=(64, 5))
        expected = model.transform(Xq)
        errors = []

        def client():
            try:
                np.testing.assert_allclose(
                    service.transform("pfr@1", Xq), expected
                )
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.stats()["totals"]["rows"] == 8 * 64


class TestConcurrentResolution:
    def test_many_threads_first_resolution(self, setup, rng):
        # Regression: _served() used to read-check-write self._resolved
        # outside _load_lock, so many threads racing the very first
        # resolution of a pinned spec could interleave mutations of the
        # memo dict. Hammer a cold service with distinct pinned specs from
        # many threads and check every answer is correct and the memo is
        # consistent afterwards.
        registry, model, X = setup
        for _ in range(7):  # versions 2..8 of the same fitted model
            registry.register("pfr", model)
        service = TransformService(registry)
        specs = [f"pfr@{v}" for v in range(1, 9)]
        expected = model.transform(X[:3])
        barrier = threading.Barrier(32)
        errors = []

        def client(i):
            barrier.wait()
            spec = specs[i % len(specs)]
            try:
                np.testing.assert_allclose(
                    service.transform(spec, X[:3]), expected
                )
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(32)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Every pinned spec resolved exactly once into a consistent memo.
        assert service._resolved == {
            f"pfr@{v}": ("pfr", v) for v in range(1, 9)
        }

    def test_latest_never_memoized(self, setup, rng):
        registry, *_ = setup
        service = TransformService(registry)
        service.transform("pfr", rng.normal(size=(2, 5)))
        service.transform("pfr@latest", rng.normal(size=(2, 5)))
        assert service._resolved == {}


class TestPromoteUnderLoad:
    def test_versioned_transform_is_never_torn(self, setup, rng):
        # While promote() flips @latest back and forth, every
        # transform_versioned() answer must match the *label's* expected
        # output — a mixed (label from one version, rows from the other)
        # response means the resolve raced the transform.
        registry, model_v1, X = setup
        WF = pairwise_judgment_graph([(2, 3)], n=60)
        model_v2 = PFR(n_components=3, gamma=0.2, n_neighbors=4).fit(X, WF)
        registry.register("pfr", model_v2)  # becomes pfr@2 = latest
        service = TransformService(registry)
        Xq = rng.normal(size=(4, 5))
        expected = {
            "pfr@1": model_v1.transform(Xq),
            "pfr@2": model_v2.transform(Xq),
        }
        stop = threading.Event()
        errors = []

        def flipper():
            version = 1
            while not stop.is_set():
                registry.promote("pfr", version)
                version = 3 - version

        def client():
            count = 0
            try:
                while count < 200 and not errors:
                    spec, Z = service.transform_versioned("pfr@latest", Xq)
                    np.testing.assert_allclose(Z, expected[spec])
                    row_spec, z = service.transform_one_versioned(
                        "pfr@latest", Xq[0]
                    )
                    np.testing.assert_allclose(z, expected[row_spec][0])
                    count += 1
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        flip = threading.Thread(target=flipper)
        clients = [threading.Thread(target=client) for _ in range(4)]
        flip.start()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop.set()
        flip.join()
        assert not errors


class TestNonTransformer:
    def test_registered_post_processor_rejected_cleanly(self, rng, tmp_path):
        from repro import EqualizedOddsPostProcessor

        y = rng.integers(0, 2, 80)
        s = rng.integers(0, 2, 80)
        y[:4], s[:4] = [0, 1, 0, 1], [0, 0, 1, 1]
        y_pred = rng.integers(0, 2, 80)
        post = EqualizedOddsPostProcessor().fit(y, y_pred, s)
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("eo", post)
        service = TransformService(registry)
        with pytest.raises(ValidationError, match="cannot be served"):
            service.transform("eo", rng.normal(size=(3, 2)))


class TestMicrobatcher:
    def test_microbatched_results_match(self, setup, rng):
        registry, model, _ = setup
        service = TransformService(registry)
        Xq = rng.normal(size=(16, 5))
        expected = model.transform(Xq)
        results = [None] * 16
        with service.microbatcher("pfr", max_wait=0.02) as batcher:
            threads = [
                threading.Thread(
                    target=lambda i=i: results.__setitem__(
                        i, batcher.submit(Xq[i])
                    )
                )
                for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        np.testing.assert_allclose(np.stack(results), expected)


class TestDriftAccounting:
    """Per-request drift scoring (opt-in) behind the metrics registry."""

    @pytest.fixture
    def landmark_setup(self, rng, tmp_path):
        from repro.graphs import knn_graph

        X = rng.normal(size=(200, 5))
        model = PFR(
            n_components=2, gamma=0.5, extension="nystrom", landmarks=60
        ).fit(X, knn_graph(X, n_neighbors=6))
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("pfr", model)
        return registry, model, X

    def test_disabled_by_default(self, landmark_setup, rng):
        registry, _, _ = landmark_setup
        service = TransformService(registry)
        service.transform("pfr", rng.normal(size=(8, 5)))
        status = service.drift_status()
        assert not status["enabled"]
        assert status["models"] == {"pfr@1": None}  # loaded, no monitor

    def test_enabled_populates_window(self, landmark_setup, rng):
        registry, _, X = landmark_setup
        service = TransformService(registry, drift=True, drift_floor=0.3)
        service.transform("pfr", X[:40])
        status = service.drift_status()
        assert status["enabled"]
        snap = status["models"]["pfr@1"]
        assert snap["count"] > 0
        assert snap["floor"] == pytest.approx(0.3)

    def test_drifted_traffic_raises_drift_fraction(self, landmark_setup):
        registry, _, X = landmark_setup
        service = TransformService(
            registry, drift=True, drift_floor=0.5, drift_sample=64
        )
        service.transform("pfr", X[:64])
        calm = service.drift_status()["models"]["pfr@1"]["drift_fraction"]
        service.transform("pfr", X[:64] + 8.0)
        shifted = service.drift_status()["models"]["pfr@1"]["drift_fraction"]
        assert shifted > calm

    def test_single_row_path_scores_on_miss_not_hit(self, landmark_setup, rng):
        registry, _, _ = landmark_setup
        service = TransformService(registry, drift=True)
        row = rng.normal(size=5)
        service.transform_one("pfr", row)
        count = service.drift_status()["models"]["pfr@1"]["count"]
        assert count == 1
        # A cache hit re-serves the embedding without re-scoring it.
        service.transform_one("pfr", row)
        assert service.drift_status()["models"]["pfr@1"]["count"] == count

    def test_batch_sampling_is_bounded(self, landmark_setup, rng):
        registry, _, X = landmark_setup
        service = TransformService(registry, drift=True, drift_sample=8)
        service.transform("pfr", X[:100])
        assert service.drift_status()["models"]["pfr@1"]["count"] <= 8

    def test_exact_model_reports_no_window(self, setup, rng):
        # Exact fits carry no landmark coordinates: drift accounting is
        # unavailable, transforms still serve, snapshot is None.
        registry, _, _ = setup
        service = TransformService(registry, drift=True)
        service.transform("pfr", rng.normal(size=(8, 5)))
        assert service.drift_status()["models"]["pfr@1"] is None

    def test_scorer_errors_never_break_serving(self, landmark_setup, rng):
        registry, _, X = landmark_setup
        service = TransformService(registry, drift=True)
        service.transform("pfr", X[:4])  # materialize the served model
        served = service._models[("pfr", 1)]

        def boom(X_rows, Z_rows=None):
            raise RuntimeError("scorer exploded")

        served.scorer = boom
        Z = service.transform("pfr", X[:4])
        assert np.isfinite(Z).all()
        assert service.metrics.counter_value(
            "serving.drift_errors", model="pfr@1"
        ) >= 1

    def test_invalid_drift_parameters(self, landmark_setup):
        registry, _, _ = landmark_setup
        with pytest.raises(ValidationError, match="drift_sample"):
            TransformService(registry, drift=True, drift_sample=0)
