"""Tests for repro.store — digests, codecs, and the run ledger."""

import json
import os
import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import ExperimentHarness, make_workload
from repro.store import (
    LedgerEntry,
    RunLedger,
    array_digest,
    canonical_json,
    coerce_ledger,
    dataset_fingerprint,
    decode_group_rates,
    decode_method_result,
    default_store_root,
    encode_group_rates,
    encode_method_result,
    task_digest,
)


def _task(**extra):
    return {"kind": "method_result", "method": "pfr", "gamma": 0.5, **extra}


class TestTaskDigest:
    def test_deterministic(self):
        assert task_digest(_task()) == task_digest(_task())

    def test_key_order_irrelevant(self):
        a = {"kind": "x", "b": 1, "a": 2}
        b = {"a": 2, "b": 1, "kind": "x"}
        assert task_digest(a) == task_digest(b)

    def test_kind_namespaces(self):
        a = {"kind": "method_result", "x": 1}
        b = {"kind": "model", "x": 1}
        assert task_digest(a) != task_digest(b)

    def test_value_changes_digest(self):
        assert task_digest(_task(gamma=0.5)) != task_digest(_task(gamma=0.7))

    def test_numpy_scalars_canonicalize(self):
        assert task_digest(_task(gamma=np.float64(0.5))) == task_digest(
            _task(gamma=0.5)
        )
        assert task_digest(_task(seed=np.int64(3))) == task_digest(
            _task(seed=3)
        )

    def test_tuples_and_lists_canonicalize(self):
        assert task_digest(_task(cols=(1, 2))) == task_digest(_task(cols=[1, 2]))

    def test_requires_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            task_digest({"method": "pfr"})

    def test_rejects_unserializable(self):
        with pytest.raises(ValidationError, match="canonicalize"):
            task_digest({"kind": "x", "bad": object()})

    def test_canonical_json_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_digest_depends_on_library_version(self, monkeypatch):
        """Entries written by one release must never be hits for another:
        a result is a function of the code as much as of the task."""
        import repro.store.digests as digests_mod

        base = task_digest(_task())
        monkeypatch.setattr(digests_mod, "__version__", "999.0.0")
        assert task_digest(_task()) != base


class TestArrayAndDatasetDigests:
    def test_array_digest_sensitivity(self):
        x = np.arange(6, dtype=np.float64)
        assert array_digest(x) == array_digest(x.copy())
        assert array_digest(x) != array_digest(x.reshape(2, 3))
        assert array_digest(x) != array_digest(x.astype(np.float32))
        assert array_digest(None) != array_digest(x)

    def test_dataset_fingerprint_content_addressed(self):
        a = make_workload("synthetic", seed=0, scale=0.3)
        b = make_workload("synthetic", seed=0, scale=0.3)
        c = make_workload("synthetic", seed=1, scale=0.3)
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        assert (
            dataset_fingerprint(a)["sha256"]
            != dataset_fingerprint(c)["sha256"]
        )

    def test_fingerprint_cached_in_metadata(self):
        data = make_workload("synthetic", seed=0, scale=0.3)
        first = dataset_fingerprint(data)
        assert "_repro_content_digest" in data.metadata
        data.metadata["_repro_content_digest"] = "sentinel"
        assert dataset_fingerprint(data)["sha256"] == "sentinel"
        assert first["name"] == "synthetic"

    def test_make_workload_stamps_provenance(self):
        data = make_workload("crime", seed=3, scale=0.2)
        assert data.metadata["provenance"] == {
            "workload": "crime", "seed": 3, "scale": 0.2,
        }


class TestCodecs:
    @pytest.fixture(scope="class")
    def result(self):
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2,
        )
        return harness.run_method("pfr", gamma=0.5)

    def test_method_result_roundtrip_exact(self, result):
        decoded = decode_method_result(encode_method_result(result))
        assert decoded.method == result.method
        assert decoded.dataset == result.dataset
        assert decoded.auc == result.auc
        assert decoded.consistency_wx == result.consistency_wx
        assert decoded.consistency_wf == result.consistency_wf
        assert decoded.summary() == result.summary()

    def test_group_rates_roundtrip_restores_int_keys(self, result):
        decoded = decode_group_rates(encode_group_rates(result.rates))
        assert decoded.groups == tuple(result.rates.groups)
        # Figure drivers index rates with *int* group values.
        assert decoded.positive_rate[0] == result.rates.positive_rate[0]
        assert decoded.fpr[1] == result.rates.fpr[1]
        assert decoded.counts == result.rates.counts
        assert decoded.gap("positive_rate") == result.rates.gap("positive_rate")

    def test_auc_by_group_keys_survive(self, result):
        decoded = decode_method_result(encode_method_result(result))
        assert decoded.auc_by_group["any"] == result.auc_by_group["any"]
        assert decoded.auc_by_group[0] == result.auc_by_group[0]
        assert decoded.auc_by_group[1] == result.auc_by_group[1]

    def test_roundtrip_survives_json_text(self, result):
        # The ledger stores payloads as JSON text; NaN-capable, exact floats.
        payload = json.loads(json.dumps(encode_method_result(result)))
        decoded = decode_method_result(payload)
        assert decoded.auc == result.auc
        assert decoded.rates.positive_rate[0] == result.rates.positive_rate[0]

    def test_nan_survives(self, result):
        encoded = encode_method_result(result)
        encoded["auc_by_group"].append([["i", 7], float("nan")])
        rehydrated = json.loads(json.dumps(encoded))
        decoded = decode_method_result(rehydrated)
        assert np.isnan(decoded.auc_by_group[7])


class TestRunLedger:
    def test_put_get_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        task = _task()
        entry = ledger.put(task, {"x": 1.5})
        assert entry.digest == task_digest(task)
        assert ledger.contains(entry.digest)
        fetched = ledger.get(entry.digest)
        assert fetched.payload == {"x": 1.5}
        assert fetched.kind == "method_result"
        assert fetched.task == task
        assert ledger.get_task(task).digest == entry.digest

    def test_get_missing_returns_none(self, tmp_path):
        assert RunLedger(tmp_path).get("0" * 64) is None
        assert not RunLedger(tmp_path).contains("0" * 64)

    def test_put_rejects_non_dict_payload(self, tmp_path):
        with pytest.raises(ValidationError, match="payloads must be dicts"):
            RunLedger(tmp_path).put(_task(), [1, 2])

    def test_idempotent_overwrite(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})
        ledger.put(_task(), {"x": 1})
        assert len(ledger.ls()) == 1

    def test_ls_filters_by_kind(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put({"kind": "a", "i": 1}, {})
        ledger.put({"kind": "b", "i": 2}, {})
        assert len(ledger.ls()) == 2
        assert [e.kind for e in ledger.ls(kind="a")] == ["a"]
        assert RunLedger(tmp_path / "empty").ls() == []

    def test_pickles_to_root_only(self, tmp_path):
        ledger = RunLedger(tmp_path)
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone == ledger
        clone.put(_task(), {"x": 1})
        assert ledger.contains(task_digest(_task()))

    def test_coerce(self, tmp_path):
        assert coerce_ledger(None) is None
        ledger = RunLedger(tmp_path)
        assert coerce_ledger(ledger) is ledger
        assert coerce_ledger(str(tmp_path)) == ledger

    def test_coerce_rejects_non_path_naming_the_value(self):
        # Regression: a bogus store= argument used to surface as a bare
        # TypeError from Path() deep inside a worker; now the error names
        # what was passed.
        with pytest.raises(ValidationError, match="int: 123"):
            coerce_ledger(123)

    def test_coerce_rejects_file_naming_the_path(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("plain file")
        with pytest.raises(ValidationError, match=str(target)):
            coerce_ledger(target)

    def test_counts_inventory(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put({"kind": "a", "i": 1}, {})
        ledger.put({"kind": "a", "i": 2}, {})
        ledger.put({"kind": "b", "i": 3}, {})
        garbage = tmp_path / "objects" / "ab" / ("e" * 64 + ".json")
        garbage.parent.mkdir(parents=True, exist_ok=True)
        garbage.write_text("{not json")
        counts = ledger.counts()
        assert counts["entries"] == 3
        assert counts["by_kind"] == {"a": 2, "b": 1}
        assert counts["model_blobs"] == 0
        assert counts["corrupt"] == 1

    def test_counts_does_not_skew_stats(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})
        before = ledger.stats()["lookups"]
        ledger.counts()
        assert ledger.stats()["lookups"] == before

    def test_counts_empty_store(self, tmp_path):
        counts = RunLedger(tmp_path / "void").counts()
        assert counts["entries"] == 0
        assert counts["by_kind"] == {}

    def test_default_root_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s"))
        assert default_store_root() == tmp_path / "s"
        monkeypatch.delenv("REPRO_STORE")
        assert default_store_root().name == "store"


class TestCrashSafety:
    def test_midwrite_failure_leaves_no_entry(self, tmp_path, monkeypatch):
        """A crash between temp-write and rename must leave no corrupt entry."""
        import repro.io as io_mod

        ledger = RunLedger(tmp_path)

        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(io_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated"):
            ledger.put(_task(), {"x": 1})
        monkeypatch.undo()
        # No entry, no stray temp file, and the ledger still verifies clean.
        assert not ledger.contains(task_digest(_task()))
        assert list(tmp_path.glob("objects/**/*.tmp")) == []
        assert ledger.verify() == {"checked": 0, "problems": []}

    def test_midwrite_failure_preserves_old_entry(self, tmp_path, monkeypatch):
        import repro.io as io_mod

        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})

        monkeypatch.setattr(
            io_mod.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            ledger.put(_task(), {"x": 2})
        monkeypatch.undo()
        assert ledger.get(task_digest(_task())).payload == {"x": 1}


class TestVerify:
    def test_clean_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})
        assert ledger.verify() == {"checked": 1, "problems": []}

    def test_detects_garbage_json(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.put(_task(), {"x": 1})
        os.truncate(entry.path, 10)
        report = ledger.verify()
        assert report["checked"] == 1
        assert "unreadable" in report["problems"][0]["error"]
        with pytest.raises(ValidationError, match="corrupt ledger entry"):
            ledger.get(entry.digest)

    def test_detects_tampered_task(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.put(_task(), {"x": 1})
        data = json.loads(open(entry.path).read())
        data["task"]["gamma"] = 0.9  # content no longer hashes to the address
        open(entry.path, "w").write(json.dumps(data))
        report = ledger.verify()
        assert "does not hash" in report["problems"][0]["error"]

    def test_detects_renamed_entry(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.put(_task(), {"x": 1})
        bogus = "f" * 64
        target = tmp_path / "objects" / bogus[:2] / f"{bogus}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        os.rename(entry.path, target)
        report = ledger.verify()
        assert "mismatches filename" in report["problems"][0]["error"]

    def test_detects_missing_model_blob(self, tmp_path):
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2, store=tmp_path,
        )
        entry = harness.export_model("pfr", gamma=0.5)
        ledger = RunLedger(tmp_path)
        os.unlink(ledger.model_path(entry.digest))
        report = ledger.verify()
        assert any("model blob" in p["error"] for p in report["problems"])


class TestGc:
    def test_sweeps_stray_tmp_files(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})
        stray = tmp_path / "objects" / "ab" / ".junk-123.tmp"
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_text("partial")
        report = ledger.gc(orphan_grace=0.0)
        assert report["tmp_files"] == [str(stray)]
        assert not stray.exists()
        assert len(ledger.ls()) == 1  # entries untouched without a filter

    def test_grace_protects_inflight_tmp_files(self, tmp_path):
        """A fresh .tmp may be a concurrent atomic_write mid-flight; gc
        must not reap it (that would crash the writer's os.replace)."""
        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})
        inflight = tmp_path / "objects" / "ab" / ".entry-456.tmp"
        inflight.parent.mkdir(parents=True, exist_ok=True)
        inflight.write_text("being written right now")
        report = ledger.gc()  # default grace
        assert report["tmp_files"] == []
        assert inflight.exists()

    def test_kind_filter_removes_entries(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put({"kind": "a", "i": 1}, {})
        keep = ledger.put({"kind": "b", "i": 2}, {})
        report = ledger.gc(kind="a")
        assert len(report["removed"]) == 1
        assert [e.digest for e in ledger.ls()] == [keep.digest]

    def test_older_than_filter(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.put(_task(), {"x": 1})
        assert ledger.gc(older_than=3600.0)["removed"] == []
        removed = ledger.gc(older_than=0.0)["removed"]
        assert len(removed) == 1
        assert ledger.ls() == []

    def test_dry_run_touches_nothing(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.put({"kind": "a", "i": 1}, {})
        report = ledger.gc(kind="a", dry_run=True)
        assert report["removed"] == [entry.digest]
        assert ledger.contains(entry.digest)

    def test_removes_orphaned_model_blob(self, tmp_path):
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2, store=tmp_path,
        )
        entry = harness.export_model("pfr", gamma=0.5)
        ledger = RunLedger(tmp_path)
        # Drop the entry but not the blob: the blob is now unreachable.
        os.unlink(entry.path)
        report = ledger.gc(orphan_grace=0.0)
        assert report["orphans"] == [entry.digest]
        assert not ledger.model_path(entry.digest).exists()

    def test_orphan_grace_protects_fresh_blobs(self, tmp_path):
        """put() writes the blob before the entry; a concurrent gc must not
        reap the blob inside that window."""
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2, store=tmp_path,
        )
        entry = harness.export_model("pfr", gamma=0.5)
        ledger = RunLedger(tmp_path)
        os.unlink(entry.path)  # blob now entry-less, but freshly written
        report = ledger.gc()  # default grace
        assert report["orphans"] == []
        assert ledger.model_path(entry.digest).exists()

    def test_gc_sweeps_corrupt_entries(self, tmp_path):
        """The repair path verify advertises: gc removes unreadable entries."""
        ledger = RunLedger(tmp_path)
        victim = ledger.put(_task(), {"x": 1})
        keep = ledger.put({"kind": "b", "i": 2}, {"y": 2})
        os.truncate(victim.path, 8)
        # ls (and gc-by-kind, which iterates it) must not explode.
        assert [e.digest for e in ledger.ls()] == [keep.digest]
        dry = ledger.gc(dry_run=True)
        assert dry["corrupt"] == [victim.digest]
        assert os.path.exists(victim.path)
        report = ledger.gc()
        assert report["corrupt"] == [victim.digest]
        assert not os.path.exists(victim.path)
        assert ledger.verify() == {"checked": 1, "problems": []}


class TestModelBlobs:
    def test_export_then_load(self, tmp_path):
        data = make_workload("synthetic", seed=0, scale=0.3)
        harness = ExperimentHarness(
            data, seed=0, n_components=2, store=tmp_path
        )
        entry = harness.export_model("pfr", gamma=0.5)
        assert entry.kind == "model"
        assert entry.has_model
        assert entry.payload["model_type"] == "PFR"
        assert entry.payload["stage_digests"]  # plan provenance captured
        model = RunLedger(tmp_path).load_model(entry.digest)
        Z = model.transform(harness.X_test)
        assert Z.shape == (len(harness.test_idx), 2)

    def test_export_is_cached(self, tmp_path):
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2, store=tmp_path,
        )
        first = harness.export_model("pfr", gamma=0.5)
        second = harness.export_model("pfr", gamma=0.5)
        assert first.digest == second.digest
        assert len(RunLedger(tmp_path).ls(kind="model")) == 1

    def test_export_requires_store(self):
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3), seed=0,
        )
        with pytest.raises(ValidationError, match="store"):
            harness.export_model("pfr")

    def test_export_rejects_pipelines(self, tmp_path):
        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, store=tmp_path,
        )
        with pytest.raises(ValidationError, match="base representation"):
            harness.export_model("pfr+")
        with pytest.raises(ValidationError, match="base representation"):
            harness.export_model("hardt")

    def test_load_model_without_blob_fails(self, tmp_path):
        ledger = RunLedger(tmp_path)
        entry = ledger.put(_task(), {"x": 1})
        with pytest.raises(ValidationError, match="no model artifact"):
            ledger.load_model(entry.digest)
        with pytest.raises(ValidationError, match="no ledger entry"):
            ledger.load_model("0" * 64)

    def test_register_from_ledger(self, tmp_path):
        from repro.serving import ModelRegistry

        harness = ExperimentHarness(
            make_workload("synthetic", seed=0, scale=0.3),
            seed=0, n_components=2, store=tmp_path / "ledger",
        )
        entry = harness.export_model("pfr", gamma=0.5)
        registry = ModelRegistry(tmp_path / "registry")
        record = registry.register_from_ledger(
            tmp_path / "ledger", entry.digest, "synthetic-pfr"
        )
        assert record.spec == "synthetic-pfr@1"
        assert record.model_type == "PFR"
        # Fit-plan provenance flows ledger -> artifact -> manifest.
        assert record.stage_digests
        loaded = registry.load("synthetic-pfr")
        assert loaded.transform(harness.X_test).shape[1] == 2

    def test_register_from_ledger_requires_ledger(self, tmp_path):
        from repro.serving import ModelRegistry

        registry = ModelRegistry(tmp_path)
        with pytest.raises(ValidationError, match="run ledger"):
            registry.register_from_ledger(None, "0" * 64, "x")


class TestLedgerEntryShape:
    def test_entry_fields(self, tmp_path):
        entry = RunLedger(tmp_path).put(_task(), {"x": 1})
        assert isinstance(entry, LedgerEntry)
        assert entry.library_version
        assert entry.created_at > 0
        assert entry.path.endswith(f"{entry.digest}.json")


class TestLineage:
    """parent links: put validation, lineage walks, gc/verify awareness."""

    def _chain(self, tmp_path, depth=3):
        ledger = RunLedger(tmp_path)
        entries = []
        parent = None
        for i in range(depth):
            entry = ledger.put(
                _task(kind="lifecycle_model", step=i), {"i": i}, parent=parent
            )
            entries.append(entry)
            parent = entry.digest
        return ledger, entries

    def test_put_records_parent(self, tmp_path):
        ledger, entries = self._chain(tmp_path, depth=2)
        root, child = entries
        assert root.parent is None
        assert child.parent == root.digest
        # Round-trips through get().
        assert ledger.get(child.digest).parent == root.digest

    def test_put_rejects_bad_parent(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(ValidationError, match="parent"):
            ledger.put(_task(), {}, parent="not-a-digest")
        digest = task_digest(_task(x=1))
        with pytest.raises(ValidationError, match="own parent"):
            ledger.put(_task(x=1), {}, parent=digest)

    def test_children_and_lineage_walk(self, tmp_path):
        ledger, entries = self._chain(tmp_path, depth=3)
        root, mid, leaf = entries
        assert [e.digest for e in ledger.children(root.digest)] == [mid.digest]
        chain = ledger.lineage(leaf.digest)  # root first
        assert [e.digest for e in chain] == [
            root.digest, mid.digest, leaf.digest
        ]
        # A root's lineage is itself.
        assert [e.digest for e in ledger.lineage(root.digest)] == [root.digest]

    def test_lineage_stops_at_dangling_parent(self, tmp_path):
        import os

        ledger, entries = self._chain(tmp_path, depth=2)
        root, child = entries
        os.unlink(root.path)
        chain = ledger.lineage(child.digest)
        assert [e.digest for e in chain] == [child.digest]

    def test_gc_never_severs_live_lineage(self, tmp_path):
        ledger = RunLedger(tmp_path)
        root = ledger.put(_task(kind="lifecycle_model", step=0), {})
        ledger.put(
            _task(kind="other", step=1), {}, parent=root.digest
        )
        # The filter selects the root, but its surviving child links to
        # it: the root must be kept and reported, not removed.
        report = ledger.gc(kind="lifecycle_model")
        assert report["removed"] == []
        assert report["kept_parents"] == [root.digest]
        assert ledger.contains(root.digest)
        # With the whole subtree selected, parent and child go together.
        report = ledger.gc(kind="lifecycle_model")  # child is kind="other"
        assert ledger.contains(root.digest)
        full = RunLedger(tmp_path / "full")
        a = full.put(_task(kind="lifecycle_model", step=0), {})
        full.put(_task(kind="lifecycle_model", step=1), {}, parent=a.digest)
        report = full.gc(kind="lifecycle_model")
        assert len(report["removed"]) == 2 and report["kept_parents"] == []

    def test_verify_flags_dangling_parent(self, tmp_path):
        import os

        ledger, entries = self._chain(tmp_path, depth=2)
        root, child = entries
        assert ledger.verify()["problems"] == []
        os.unlink(root.path)
        problems = ledger.verify()["problems"]
        assert len(problems) == 1
        assert problems[0]["digest"] == child.digest
        assert "dangling parent" in problems[0]["error"]
