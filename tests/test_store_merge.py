"""Tests for repro.store.merge — ledger union for scale-out sweeps.

Covers the tentpole guarantees (idempotent digest-keyed union, conflict
detection, atomic model-blob travel, lineage survival) and the edge cases
the distributed workflow meets in practice: merging a store into itself,
torn/tmp files in a source, and dangling-parent entries surfacing in a
post-merge ``verify``.
"""

import json

import numpy as np
import pytest

from repro import PFR
from repro.exceptions import ValidationError
from repro.graphs import knn_graph
from repro.store import MergeReport, RunLedger, merge_stores


def _task(i, **extra):
    return {"kind": "method_result", "method": "pfr", "i": i, **extra}


def _fitted_pfr():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 4))
    WF = knn_graph(X, n_neighbors=3).toarray()
    return PFR(n_components=2, gamma=0.5).fit(X, WF)


@pytest.fixture
def stores(tmp_path):
    return RunLedger(tmp_path / "dest"), RunLedger(tmp_path / "src")


class TestBasicUnion:
    def test_disjoint_union(self, stores):
        dest, src = stores
        dest.put(_task(1), {"x": 1})
        src.put(_task(2), {"x": 2})
        src.put(_task(3), {"x": 3})
        report = merge_stores(dest, src)
        assert report.n_copied == 2
        assert report.n_deduped == 0
        assert not report.conflicts
        assert len(dest.ls()) == 3
        assert dest.verify()["problems"] == []

    def test_shared_entries_dedupe(self, stores):
        dest, src = stores
        shared_entry = src.put(_task(1), {"x": 1})
        dest.put(_task(1), {"x": 1})
        src.put(_task(2), {"x": 2})
        report = merge_stores(dest, src)
        assert report.n_copied == 1
        assert report.deduped == [shared_entry.digest]
        assert report.dedupe_rate == 0.5

    def test_idempotent(self, stores):
        dest, src = stores
        src.put(_task(1), {"x": 1})
        src.put(_task(2), {"x": 2})
        first = merge_stores(dest, src)
        second = merge_stores(dest, src)
        assert first.n_copied == 2
        assert second.n_copied == 0
        assert sorted(second.deduped) == sorted(first.copied)
        assert dest.verify()["problems"] == []

    def test_copied_entry_bytes_identical(self, stores):
        # Verbatim byte copy: created_at, parent, everything survives, so
        # a merged store re-verifies and re-reads exactly like the source.
        dest, src = stores
        entry = src.put(_task(1), {"x": 1.5})
        merge_stores(dest, src)
        src_bytes = (src.root / "objects").joinpath(
            entry.digest[:2], f"{entry.digest}.json"
        ).read_bytes()
        dest_bytes = (dest.root / "objects").joinpath(
            entry.digest[:2], f"{entry.digest}.json"
        ).read_bytes()
        assert src_bytes == dest_bytes

    def test_multiple_sources_one_call(self, tmp_path):
        dest = RunLedger(tmp_path / "dest")
        a = RunLedger(tmp_path / "a")
        b = RunLedger(tmp_path / "b")
        a.put(_task(1), {"x": 1})
        b.put(_task(2), {"x": 2})
        b.put(_task(1), {"x": 1})  # shared with a
        report = merge_stores(dest, a, b)
        assert report.n_copied == 2
        assert report.n_deduped == 1
        assert report.sources == [str(a.root), str(b.root)]

    def test_dry_run_writes_nothing(self, stores):
        dest, src = stores
        src.put(_task(1), {"x": 1})
        report = merge_stores(dest, src, dry_run=True)
        assert report.dry_run
        assert report.n_copied == 1
        assert dest.ls() == []

    def test_empty_source_is_fine(self, stores):
        dest, src = stores
        dest.put(_task(1), {"x": 1})
        report = merge_stores(dest, src)
        assert report.n_copied == 0
        assert len(dest.ls()) == 1

    def test_requires_dest_and_sources(self, stores):
        dest, src = stores
        with pytest.raises(ValidationError, match="destination"):
            merge_stores(None, src)
        with pytest.raises(ValidationError, match="at least one source"):
            merge_stores(dest)
        with pytest.raises(ValidationError, match="got None"):
            merge_stores(dest, None)

    def test_accepts_paths_and_ledgers(self, tmp_path):
        src = RunLedger(tmp_path / "src")
        src.put(_task(1), {"x": 1})
        report = merge_stores(str(tmp_path / "dest"), str(src.root))
        assert isinstance(report, MergeReport)
        assert report.n_copied == 1
        assert RunLedger(tmp_path / "dest").contains(src.ls()[0].digest)


class TestSelfMerge:
    def test_self_merge_is_noop(self, tmp_path):
        ledger = RunLedger(tmp_path / "store")
        ledger.put(_task(1), {"x": 1})
        report = merge_stores(ledger, ledger)
        assert report.n_copied == 0
        assert report.n_deduped == 0
        assert report.self_merges == [str(ledger.root)]
        assert len(ledger.ls()) == 1

    def test_self_merge_by_equivalent_path(self, tmp_path):
        # Same directory reached through a different spelling still
        # counts as self.
        ledger = RunLedger(tmp_path / "store")
        ledger.put(_task(1), {"x": 1})
        alias = tmp_path / "." / "store"
        report = merge_stores(ledger, alias)
        assert report.self_merges == [str(RunLedger(alias).root)]
        assert report.n_copied == 0


class TestConflicts:
    def test_differing_payload_reported_dest_kept(self, stores):
        dest, src = stores
        entry = dest.put(_task(1), {"x": 1})
        # Forge a source entry under the same digest with a different
        # payload — same task, so the filename/digest check passes, but
        # the content disagrees (what non-deterministic compute or a
        # silently corrupted store would produce).
        src_entry = src.put(_task(1), {"x": 1})
        path = src.root / "objects" / entry.digest[:2] / f"{entry.digest}.json"
        data = json.loads(path.read_text())
        data["payload"] = {"x": 999}
        path.write_text(json.dumps(data))
        report = merge_stores(dest, src)
        assert report.n_conflicts == 1
        assert report.conflicts[0]["digest"] == src_entry.digest
        assert report.conflicts[0]["source"] == str(src.root)
        assert dest.get(entry.digest).payload == {"x": 1}

    def test_torn_dest_entry_healed_by_source(self, stores):
        dest, src = stores
        entry = src.put(_task(1), {"x": 1})
        dest_path = (
            dest.root / "objects" / entry.digest[:2] / f"{entry.digest}.json"
        )
        dest_path.parent.mkdir(parents=True)
        dest_path.write_text('{"digest": truncated')
        report = merge_stores(dest, src)
        assert report.copied == [entry.digest]
        assert dest.get(entry.digest).payload == {"x": 1}
        assert dest.verify()["problems"] == []


class TestTornSources:
    def test_tmp_files_skipped_not_copied(self, stores):
        dest, src = stores
        src.put(_task(1), {"x": 1})
        tmp = src.root / "objects" / "ab" / ".deadbeef.json.tmp"
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text("torn writer leftovers")
        report = merge_stores(dest, src)
        assert report.n_copied == 1
        assert any("temp file" in item["reason"] for item in report.skipped)
        assert not list((dest.root / "objects").glob("**/*.tmp"))
        assert not list((dest.root / "objects").glob("**/.*.tmp"))
        assert dest.verify()["problems"] == []

    def test_unreadable_json_skipped(self, stores):
        dest, src = stores
        src.put(_task(1), {"x": 1})
        garbage = src.root / "objects" / "ab" / ("c" * 64 + ".json")
        garbage.parent.mkdir(parents=True, exist_ok=True)
        garbage.write_text('{"digest": "c...', encoding="utf-8")
        report = merge_stores(dest, src)
        assert report.n_copied == 1
        assert any(
            "unreadable" in item["reason"] for item in report.skipped
        )
        assert dest.verify()["problems"] == []

    def test_digest_filename_mismatch_skipped(self, stores):
        dest, src = stores
        entry = src.put(_task(1), {"x": 1})
        # Rename the object file so the filename no longer matches the
        # stored digest (a hand-tampered or mis-copied store).
        bogus = "f" * 64
        target = src.root / "objects" / bogus[:2] / f"{bogus}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        (src.root / "objects" / entry.digest[:2] / f"{entry.digest}.json").rename(
            target
        )
        report = merge_stores(dest, src)
        assert report.n_copied == 0
        assert any(
            "mismatches filename" in item["reason"] for item in report.skipped
        )


class TestModelsAndLineage:
    def test_model_blob_travels_with_entry(self, stores):
        dest, src = stores
        model = _fitted_pfr()
        entry = src.put(_task(1), {"x": 1}, model=model)
        report = merge_stores(dest, src)
        assert report.models_copied == [entry.digest]
        assert dest.model_path(entry.digest).is_file()
        loaded = dest.load_model(entry.digest)
        np.testing.assert_array_equal(loaded.components_, model.components_)
        assert dest.verify()["problems"] == []

    def test_missing_source_blob_reported(self, stores):
        dest, src = stores
        entry = src.put(_task(1), {"x": 1}, model=_fitted_pfr())
        src.model_path(entry.digest).unlink()
        report = merge_stores(dest, src)
        assert report.missing_models == [entry.digest]
        assert entry.digest in report.copied
        # The damage is visible where it belongs: post-merge verify.
        problems = dest.verify()["problems"]
        assert any("model blob" in p["error"] for p in problems)

    def test_parent_lineage_survives_union(self, stores):
        dest, src = stores
        root_entry = src.put(_task(1), {"x": 1})
        child = src.put(_task(2), {"x": 2}, parent=root_entry.digest)
        merge_stores(dest, src)
        chain = dest.lineage(child.digest)
        assert [e.digest for e in chain] == [root_entry.digest, child.digest]
        assert dest.verify()["problems"] == []

    def test_lineage_split_across_sources(self, tmp_path):
        # Parent computed on one shard, child refreshed on another: the
        # union must reconnect them regardless of merge order.
        dest = RunLedger(tmp_path / "dest")
        a = RunLedger(tmp_path / "a")
        b = RunLedger(tmp_path / "b")
        root_entry = a.put(_task(1), {"x": 1})
        # The child references the parent by digest only; store it in b.
        b.put(_task(2), {"x": 2}, parent=root_entry.digest)
        merge_stores(dest, b, a)  # child's source merged first
        assert dest.verify()["problems"] == []
        child_digest = [e.digest for e in dest.ls() if e.parent][0]
        assert [e.digest for e in dest.lineage(child_digest)][0] == (
            root_entry.digest
        )

    def test_dangling_parent_flagged_by_post_merge_verify(self, stores):
        dest, src = stores
        src.put(_task(2), {"x": 2}, parent="a" * 64)
        report = merge_stores(dest, src)
        assert report.n_copied == 1
        problems = dest.verify()["problems"]
        assert any("dangling parent" in p["error"] for p in problems)


class TestObservability:
    def test_merge_counters_recorded(self, stores):
        from repro.obs import get_registry

        dest, src = stores
        src.put(_task(1), {"x": 1})
        before = get_registry().counter_value(
            "merge.copied", dest=str(dest.root)
        )
        merge_stores(dest, src)
        merge_stores(dest, src)
        registry = get_registry()
        assert registry.counter_value(
            "merge.copied", dest=str(dest.root)
        ) == before + 1
        assert registry.counter_value(
            "merge.deduped", dest=str(dest.root)
        ) >= 1

    def test_report_to_json_shape(self, stores):
        dest, src = stores
        src.put(_task(1), {"x": 1})
        payload = merge_stores(dest, src).to_json()
        assert payload["copied"] == 1
        assert payload["dest"] == str(dest.root)
        json.dumps(payload)  # must be JSON-serializable as-is
