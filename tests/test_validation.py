"""Tests for repro._validation — the shared input-hygiene layer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_is_fitted,
    check_random_state,
    check_square,
    check_symmetric,
    check_X_y,
    column_or_1d,
)
from repro.exceptions import NotFittedError, ValidationError


class TestCheckArray:
    def test_accepts_list_of_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_rejects_1d_when_2d_required(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1.0, 2.0, 3.0])

    def test_allows_1d_when_not_required(self):
        out = check_array([1.0, 2.0], ensure_2d=False)
        assert out.shape == (2,)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="infinity|NaN"):
            check_array([[1.0, np.inf]])

    def test_rejects_scalar(self):
        with pytest.raises(ValidationError):
            check_array(5.0)

    def test_min_samples(self):
        with pytest.raises(ValidationError, match="at least 3"):
            check_array([[1.0], [2.0]], min_samples=3)

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            check_array([["a", "b"]])

    def test_sparse_rejected_by_default(self):
        W = sp.eye(3, format="csr")
        with pytest.raises(ValidationError, match="dense"):
            check_array(W)

    def test_sparse_accepted_when_allowed(self):
        W = sp.eye(3, format="coo")
        out = check_array(W, allow_sparse=True)
        assert sp.issparse(out)
        assert out.format == "csr"

    def test_sparse_nan_rejected(self):
        W = sp.csr_matrix(np.array([[np.nan, 0.0], [0.0, 1.0]]))
        with pytest.raises(ValidationError, match="NaN"):
            check_array(W, allow_sparse=True)

    def test_keeps_dtype_when_none(self):
        out = check_array(np.array([[1, 2]], dtype=np.int32), dtype=None)
        assert out.dtype == np.int32


class TestColumnOr1d:
    def test_flattens_column_vector(self):
        out = column_or_1d(np.ones((4, 1)))
        assert out.shape == (4,)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            column_or_1d(np.ones((3, 2)))

    def test_passes_through_1d(self):
        y = np.array([1, 2, 3])
        assert column_or_1d(y).shape == (3,)


class TestConsistentLength:
    def test_returns_common_length(self):
        assert check_consistent_length(np.ones((5, 2)), np.ones(5)) == 5

    def test_raises_on_mismatch(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            check_consistent_length(np.ones(3), np.ones(4))

    def test_ignores_none(self):
        assert check_consistent_length(np.ones(4), None) == 4

    def test_raises_on_empty_call(self):
        with pytest.raises(ValidationError):
            check_consistent_length(None)


class TestCheckXY:
    def test_joint_validation(self):
        X, y = check_X_y([[1.0, 2.0], [3.0, 4.0]], [0, 1])
        assert X.shape == (2, 2)
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            check_X_y([[1.0, 2.0]], [0, 1])


class TestBinaryLabels:
    def test_accepts_binary(self):
        y = check_binary_labels([0, 1, 1, 0])
        assert y.dtype == np.int64

    def test_accepts_single_class(self):
        assert check_binary_labels([1, 1]).tolist() == [1, 1]

    def test_rejects_other_values(self):
        with pytest.raises(ValidationError, match="binary"):
            check_binary_labels([0, 1, 2])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_binary_labels([-1, 1])


class TestCheckIsFitted:
    def test_raises_when_missing(self):
        class Model:
            coef_ = None

        with pytest.raises(NotFittedError, match="not fitted"):
            check_is_fitted(Model(), "coef_")

    def test_passes_when_present(self):
        class Model:
            coef_ = np.ones(3)

        check_is_fitted(Model(), "coef_")

    def test_multiple_attributes(self):
        class Model:
            a_ = 1
            b_ = None

        with pytest.raises(NotFittedError, match="b_"):
            check_is_fitted(Model(), ("a_", "b_"))


class TestRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).random(3)
        b = check_random_state(42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_invalid_seed(self):
        with pytest.raises(ValidationError):
            check_random_state("not-a-seed")


class TestSquareSymmetric:
    def test_square_ok(self):
        out = check_square(np.eye(3))
        assert out.shape == (3, 3)

    def test_rectangular_rejected(self):
        with pytest.raises(ValidationError, match="square"):
            check_square(np.ones((2, 3)))

    def test_symmetric_ok(self):
        W = np.array([[0.0, 1.0], [1.0, 0.0]])
        check_symmetric(W)

    def test_asymmetric_rejected(self):
        W = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValidationError, match="symmetric"):
            check_symmetric(W)

    def test_sparse_symmetric_ok(self):
        W = sp.csr_matrix(np.array([[0.0, 2.0], [2.0, 0.0]]))
        out = check_symmetric(W)
        assert sp.issparse(out)

    def test_sparse_asymmetric_rejected(self):
        W = sp.csr_matrix(np.array([[0.0, 2.0], [0.0, 0.0]]))
        with pytest.raises(ValidationError, match="symmetric"):
            check_symmetric(W)

    def test_tolerance_respected(self):
        W = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        check_symmetric(W, tol=1e-10)
